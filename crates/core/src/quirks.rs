//! The quirk matrix: categorical toolchain failures reported by the paper.
//!
//! Several results in the paper are not performance numbers but *facts
//! about specific compiler releases*: internal compiler errors, runtime
//! crashes, silently wrong answers, and unsupported targets. These cannot
//! be derived from a performance model, so they are recorded here as a
//! table, each entry citing the paper text it reproduces. Everything
//! performance-shaped stays in the mechanism models.

use crate::error::{Failure, FailureKind};
use crate::toolchain::{Scheme, SyclVariant, Toolchain};
use machine_model::{AtomicKind, PlatformId};

/// Canonical application names used across the workspace.
pub mod apps {
    pub const CLOVERLEAF2D: &str = "cloverleaf2d";
    pub const CLOVERLEAF3D: &str = "cloverleaf3d";
    pub const OPENSBLI_SA: &str = "opensbli_sa";
    pub const OPENSBLI_SN: &str = "opensbli_sn";
    pub const RTM: &str = "rtm";
    pub const ACOUSTIC: &str = "acoustic";
    pub const MGCFD: &str = "mgcfd";

    /// The six structured-mesh application ids, figure order.
    pub const STRUCTURED: [&str; 6] = [
        CLOVERLEAF2D,
        CLOVERLEAF3D,
        OPENSBLI_SA,
        OPENSBLI_SN,
        RTM,
        ACOUSTIC,
    ];

    /// All seven applications.
    pub const ALL: [&str; 7] = [
        CLOVERLEAF2D,
        CLOVERLEAF3D,
        OPENSBLI_SA,
        OPENSBLI_SN,
        RTM,
        ACOUSTIC,
        MGCFD,
    ];
}

/// Check whether a configuration is known to fail before it runs.
///
/// Returns `Some(failure)` for combinations the paper reports as broken;
/// `None` means the configuration runs (its performance then comes from
/// the models).
pub fn check(
    app: &str,
    platform: PlatformId,
    toolchain: Toolchain,
    variant: SyclVariant,
    scheme: Option<Scheme>,
) -> Option<Failure> {
    use PlatformId::*;
    use Toolchain::*;

    // Hard capability gaps first.
    if !toolchain.supports(platform) {
        return Some(Failure::new(
            FailureKind::Unsupported,
            format!("{} does not target {}", toolchain.label(), platform.label()),
        ));
    }

    // §4.2 (Genoa-X): "For CloverLeaf 2D, both DPC++ (flat variant) and
    // OpenSYCL (either variant) produced code that gave incorrect
    // results." (§4.4 adds: CloverLeaf 2D "only working with DPC++
    // nd_range on Genoa-X".)
    if app == apps::CLOVERLEAF2D && platform == GenoaX {
        let broken = matches!(
            (toolchain, variant),
            (Dpcpp, SyclVariant::Flat) | (OpenSycl, _)
        );
        if broken {
            return Some(Failure::new(
                FailureKind::IncorrectResult,
                "CloverLeaf 2D miscompiles on Genoa-X (paper §4.2)",
            ));
        }
    }

    // §4.1 (MI250X): OpenMP offload with the Cray compilers shows
    // "competitive performance (though failing on CloverLeaf 3D)".
    if app == apps::CLOVERLEAF3D && platform == Mi250x && toolchain == OmpOffload {
        return Some(Failure::new(
            FailureKind::RuntimeCrash,
            "Cray OpenMP offload fails on CloverLeaf 3D (paper §4.1)",
        ));
    }

    // §4.3 (MG-CFD on CPUs): "numerous SYCL variant and compiler
    // combinations ... failed to compile (with internal compiler errors,
    // mostly OpenSYCL), crashed during execution, or produced incorrect
    // results". The paper also states OpenSYCL+atomics worked on *all*
    // platforms (it is the variant whose PP̄ = 0.42), so the failures are
    // confined to the colouring schemes below.
    if app == apps::MGCFD && !platform.is_gpu() {
        match (toolchain, scheme) {
            (OpenSycl, Some(Scheme::GlobalColor)) => {
                return Some(Failure::new(
                    FailureKind::CompileError,
                    "OpenSYCL ICE on global-colouring kernels (paper §4.3)",
                ));
            }
            (Dpcpp, Some(Scheme::GlobalColor)) => {
                return Some(Failure::new(
                    FailureKind::RuntimeCrash,
                    "DPC++ global-colouring variant crashes on CPUs (paper §4.3)",
                ));
            }
            _ => {}
        }
    }

    None
}

/// Which atomic path a toolchain gets on a platform.
///
/// GPUs have fast native FP atomics, but §4.3: "on the MI250X there are
/// 'safe' and 'unsafe' ones - we used the unsafe ones where we could...
/// with OpenSYCL, we could not access the unsafe atomics, therefore got
/// significantly worse throughput". CPUs only have CAS loops.
pub fn atomic_kind(platform: PlatformId, toolchain: Toolchain) -> AtomicKind {
    if !platform.is_gpu() {
        return AtomicKind::CasLoop;
    }
    if platform == PlatformId::Mi250x && toolchain == Toolchain::OpenSycl {
        return AtomicKind::CasLoop;
    }
    AtomicKind::NativeFp
}

#[cfg(test)]
mod tests {
    use super::*;

    const ND: SyclVariant = SyclVariant::NdRange([64, 4, 1]);

    #[test]
    fn cloverleaf2d_on_genoax_only_works_with_dpcpp_ndrange() {
        let p = PlatformId::GenoaX;
        assert!(check(apps::CLOVERLEAF2D, p, Toolchain::Dpcpp, ND, None).is_none());
        assert!(check(
            apps::CLOVERLEAF2D,
            p,
            Toolchain::Dpcpp,
            SyclVariant::Flat,
            None
        )
        .is_some());
        assert!(check(apps::CLOVERLEAF2D, p, Toolchain::OpenSycl, ND, None).is_some());
        assert!(check(
            apps::CLOVERLEAF2D,
            p,
            Toolchain::OpenSycl,
            SyclVariant::Flat,
            None
        )
        .is_some());
        // Baselines are fine.
        assert!(check(apps::CLOVERLEAF2D, p, Toolchain::Mpi, ND, None).is_none());
    }

    #[test]
    fn cray_offload_fails_cloverleaf3d_only_on_mi250x() {
        let f = check(
            apps::CLOVERLEAF3D,
            PlatformId::Mi250x,
            Toolchain::OmpOffload,
            SyclVariant::Flat,
            None,
        );
        assert_eq!(f.unwrap().kind, FailureKind::RuntimeCrash);
        assert!(check(
            apps::CLOVERLEAF2D,
            PlatformId::Mi250x,
            Toolchain::OmpOffload,
            SyclVariant::Flat,
            None
        )
        .is_none());
    }

    #[test]
    fn dpcpp_is_unsupported_on_altra() {
        let f = check(apps::RTM, PlatformId::Altra, Toolchain::Dpcpp, ND, None);
        assert_eq!(f.unwrap().kind, FailureKind::Unsupported);
    }

    #[test]
    fn opensycl_atomics_works_on_every_platform() {
        // This combination anchors the paper's PP̄ = 0.42 claim.
        for p in [
            PlatformId::A100,
            PlatformId::Mi250x,
            PlatformId::Max1100,
            PlatformId::Xeon8360Y,
            PlatformId::GenoaX,
            PlatformId::Altra,
        ] {
            assert!(
                check(
                    apps::MGCFD,
                    p,
                    Toolchain::OpenSycl,
                    ND,
                    Some(Scheme::Atomics)
                )
                .is_none(),
                "OpenSYCL+atomics must work on {p:?}"
            );
        }
    }

    #[test]
    fn mgcfd_colouring_failures_hit_cpus_not_gpus() {
        let cpu = PlatformId::Xeon8360Y;
        let gpu = PlatformId::A100;
        assert_eq!(
            check(
                apps::MGCFD,
                cpu,
                Toolchain::OpenSycl,
                ND,
                Some(Scheme::GlobalColor)
            )
            .unwrap()
            .kind,
            FailureKind::CompileError
        );
        assert_eq!(
            check(
                apps::MGCFD,
                cpu,
                Toolchain::Dpcpp,
                ND,
                Some(Scheme::GlobalColor)
            )
            .unwrap()
            .kind,
            FailureKind::RuntimeCrash
        );
        assert!(check(
            apps::MGCFD,
            gpu,
            Toolchain::OpenSycl,
            ND,
            Some(Scheme::GlobalColor)
        )
        .is_none());
    }

    #[test]
    fn mi250x_opensycl_loses_unsafe_atomics() {
        assert_eq!(
            atomic_kind(PlatformId::Mi250x, Toolchain::OpenSycl),
            AtomicKind::CasLoop
        );
        assert_eq!(
            atomic_kind(PlatformId::Mi250x, Toolchain::NativeHip),
            AtomicKind::NativeFp
        );
        assert_eq!(
            atomic_kind(PlatformId::Mi250x, Toolchain::Dpcpp),
            AtomicKind::NativeFp
        );
        assert_eq!(
            atomic_kind(PlatformId::GenoaX, Toolchain::Dpcpp),
            AtomicKind::CasLoop
        );
    }

    #[test]
    fn there_is_a_working_sycl_config_on_every_platform_for_every_app() {
        // §4.4: "there is at least one compiler and SYCL formulation that
        // works across all architectures and applications."
        for app in apps::ALL {
            for p in [
                PlatformId::A100,
                PlatformId::Mi250x,
                PlatformId::Max1100,
                PlatformId::Xeon8360Y,
                PlatformId::GenoaX,
                PlatformId::Altra,
            ] {
                let schemes: &[Option<Scheme>] = if app == apps::MGCFD {
                    &[
                        Some(Scheme::Atomics),
                        Some(Scheme::GlobalColor),
                        Some(Scheme::HierColor),
                    ]
                } else {
                    &[None]
                };
                let works = [Toolchain::Dpcpp, Toolchain::OpenSycl]
                    .into_iter()
                    .any(|tc| {
                        [SyclVariant::Flat, ND]
                            .into_iter()
                            .any(|v| schemes.iter().any(|&s| check(app, p, tc, v, s).is_none()))
                    });
                assert!(works, "no working SYCL config for {app} on {p:?}");
            }
        }
    }
}
