//! Failure modes observed in the paper's experiments.
//!
//! A failed variant is *data*, not an error to be retried: the figures in
//! the paper mark bars as missing/incorrect, and the performance-
//! portability metric treats unsupported combinations specially. We model
//! that with a typed failure carried through to reporting.

use std::fmt;

/// Why a (platform, toolchain, variant, app) combination produced no
/// valid measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// The toolchain does not target this platform at all (e.g. DPC++ has
    /// no aarch64 CPU backend, CUDA only targets NVIDIA).
    Unsupported,
    /// Compilation failed (the paper reports internal compiler errors,
    /// mostly from OpenSYCL, for several MG-CFD CPU variants).
    CompileError,
    /// The binary crashed at run time.
    RuntimeCrash,
    /// The run completed but validation failed (e.g. CloverLeaf 2D with
    /// DPC++-flat / OpenSYCL on Genoa-X).
    IncorrectResult,
    /// The `sycl-verify` static/dynamic analysis found `Error`-severity
    /// findings (undeclared access, invalid colouring, detected race).
    VerificationFailed,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FailureKind::Unsupported => "unsupported target",
            FailureKind::CompileError => "compile error",
            FailureKind::RuntimeCrash => "runtime crash",
            FailureKind::IncorrectResult => "incorrect result",
            FailureKind::VerificationFailed => "verification failed",
        };
        f.write_str(s)
    }
}

/// A failure together with its provenance, for reports.
#[derive(Debug, Clone)]
pub struct Failure {
    pub kind: FailureKind,
    /// Human-readable explanation (usually citing the paper's section).
    pub detail: String,
}

impl Failure {
    pub fn new(kind: FailureKind, detail: impl Into<String>) -> Self {
        Failure {
            kind,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

impl std::error::Error for Failure {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let f = Failure::new(FailureKind::IncorrectResult, "validation mismatch");
        let s = f.to_string();
        assert!(s.contains("incorrect result"));
        assert!(s.contains("validation mismatch"));
    }

    #[test]
    fn kinds_are_distinct() {
        use FailureKind::*;
        let kinds = [
            Unsupported,
            CompileError,
            RuntimeCrash,
            IncorrectResult,
            VerificationFailed,
        ];
        for (i, a) in kinds.iter().enumerate() {
            for (j, b) in kinds.iter().enumerate() {
                assert_eq!(i == j, a == b);
            }
        }
    }
}
