//! Record-once / replay-many launch graphs.
//!
//! A [`GraphBuilder`] records a sequence of launches (plus transfers,
//! halo exchanges and phase markers) as [`LaunchNode`]s with functional
//! bodies. [`LaunchGraph::replay`] then runs the four launch layers in
//! batch: the whole graph is priced under **one** pricing-cache lock
//! acquisition, the bodies execute back-to-back, and the whole sequence
//! commits under **one** ledger lock acquisition — instead of one of
//! each per launch on the eager path.
//!
//! The non-negotiable invariant: a replayed graph leaves the ledger
//! **bit-identical** to launching the same sequence eagerly. Commit
//! applies ops in recorded order with the same floating-point
//! accumulation, the same interning and the same observer ordering. A
//! session built with [`SessionConfig::eager_launches`] makes `replay`
//! fall back to the per-launch path, which is how the equivalence tests
//! cross-check the two.

use crate::kernel::Kernel;
use crate::launch::commit::Ledger;
use crate::launch::execute::LaunchSpan;
use crate::launch::price::{PriceCache, PriceContext, Priced};
use crate::launch::record::{LaunchMeta, LaunchNode};
use crate::launch::residency::ResidencyTracker;
use crate::session::{LaunchRecord, Session};
use machine_model::{Precision, TransferDir};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One recorded operation.
// Launch dominates real graphs (phases/exchanges are bookkeeping), so
// the large variant stays inline rather than paying a Box per node.
#[allow(clippy::large_enum_variant)]
enum GraphOp<'a> {
    /// A kernel launch: the fingerprinted node plus its functional body.
    /// The body receives `session.executes()` at replay time. `meta` is
    /// the declarative access metadata for static analysis; it never
    /// enters pricing or the ledger.
    Launch {
        node: LaunchNode,
        meta: LaunchMeta,
        body: Box<dyn Fn(bool) + Sync + 'a>,
    },
    /// A halo exchange (`Session::exchange` equivalent). `dats` lists
    /// the shadow-registry ids of the exchanged datasets (empty when
    /// the recorder declared only a volume).
    Exchange {
        bytes: f64,
        messages: u64,
        dats: Vec<u32>,
    },
    /// A host↔device transfer (`Session::transfer` equivalent), with
    /// the transferred datasets when declared and the copy direction.
    Transfer {
        bytes: f64,
        dats: Vec<u32>,
        dir: TransferDir,
    },
    /// Open a named phase span (telemetry only, no ledger effect).
    PhaseBegin { name: &'static str },
    /// Close the innermost open phase span.
    PhaseEnd,
}

/// Graph ids are process-unique so observers can dedup repeated replays
/// of the same recorded graph.
static NEXT_GRAPH_ID: AtomicU64 = AtomicU64::new(1);

/// Records a launch sequence; [`GraphBuilder::finish`] freezes it into a
/// [`LaunchGraph`]. Obtained from [`Session::record`].
#[derive(Default)]
pub struct GraphBuilder<'a> {
    ops: Vec<GraphOp<'a>>,
    /// Names of currently-open phases, for defect reporting.
    open_phases: Vec<&'static str>,
    /// Structural phase-nesting defects observed while recording.
    phase_defects: Vec<String>,
}

impl<'a> GraphBuilder<'a> {
    pub(crate) fn new() -> GraphBuilder<'a> {
        GraphBuilder::default()
    }

    /// Record one launch. `body` is the functional kernel body; it is
    /// called on every replay with `session.executes()` as its argument
    /// (dry-run sessions replay pricing without running bodies).
    ///
    /// The launch carries [`LaunchMeta::opaque`] metadata — static
    /// analysis will not reason about its data accesses. DSLs that know
    /// their access sets record through
    /// [`GraphBuilder::launch_with_meta`] instead.
    pub fn launch(&mut self, kernel: &Kernel, body: impl Fn(bool) + Sync + 'a) {
        self.launch_with_meta(kernel, LaunchMeta::opaque(), body);
    }

    /// Record one launch together with its declared access metadata.
    /// `meta` feeds the static dataflow analyzer only: it is not hashed
    /// into the pricing fingerprint and never reaches the ledger, so
    /// recording it cannot change pricing or execution.
    pub fn launch_with_meta(
        &mut self,
        kernel: &Kernel,
        meta: LaunchMeta,
        body: impl Fn(bool) + Sync + 'a,
    ) {
        self.ops.push(GraphOp::Launch {
            node: LaunchNode::new(kernel),
            meta,
            body: Box::new(body),
        });
    }

    /// Record a halo exchange (see [`Session::exchange`]).
    pub fn exchange(&mut self, bytes: f64, messages: u64) {
        self.exchange_dats(bytes, messages, Vec::new());
    }

    /// Record a halo exchange declaring which datasets it covers (by
    /// shadow-registry id). The ids feed the missing-halo-exchange and
    /// redundant-exchange lints; cost accounting uses `bytes`/`messages`
    /// exactly as [`GraphBuilder::exchange`] does.
    pub fn exchange_dats(&mut self, bytes: f64, messages: u64, dats: Vec<u32>) {
        self.ops.push(GraphOp::Exchange {
            bytes,
            messages,
            dats,
        });
    }

    /// Record an anonymous host→device transfer (see
    /// [`Session::transfer`]). No dat list, so residency never elides
    /// it.
    pub fn transfer(&mut self, bytes: f64) {
        self.transfer_dir(bytes, Vec::new(), TransferDir::H2D);
    }

    /// Record a host→device transfer declaring which datasets it moves
    /// (by shadow-registry id), for the dead-transfer and residency
    /// lints and for elision.
    pub fn transfer_dats(&mut self, bytes: f64, dats: Vec<u32>) {
        self.transfer_dir(bytes, dats, TransferDir::H2D);
    }

    /// Record a staging upload (host→device) of the given datasets.
    pub fn upload_dats(&mut self, bytes: f64, dats: Vec<u32>) {
        self.transfer_dir(bytes, dats, TransferDir::H2D);
    }

    /// Record a result readback (device→host) of the given datasets.
    pub fn download_dats(&mut self, bytes: f64, dats: Vec<u32>) {
        self.transfer_dir(bytes, dats, TransferDir::D2H);
    }

    /// Record a transfer with an explicit direction.
    pub fn transfer_dir(&mut self, bytes: f64, dats: Vec<u32>, dir: TransferDir) {
        self.ops.push(GraphOp::Transfer { bytes, dats, dir });
    }

    /// Open a named phase span covering the ops recorded until the
    /// matching [`GraphBuilder::end_phase`].
    pub fn phase(&mut self, name: &'static str) {
        self.open_phases.push(name);
        self.ops.push(GraphOp::PhaseBegin { name });
    }

    /// Close the innermost open phase. An unmatched call records a
    /// structural defect on the graph (replay tolerates it, the
    /// dataflow lint reports it).
    pub fn end_phase(&mut self) {
        if self.open_phases.pop().is_none() {
            self.phase_defects.push(format!(
                "end_phase with no open phase (after {} recorded ops)",
                self.ops.len()
            ));
        }
        self.ops.push(GraphOp::PhaseEnd);
    }

    /// Ops recorded so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Freeze the recording. Phases left open become structural defects
    /// on the graph.
    pub fn finish(mut self) -> LaunchGraph<'a> {
        for name in self.open_phases.drain(..).rev() {
            self.phase_defects
                .push(format!("phase `{name}` opened but never closed"));
        }
        let launches = self
            .ops
            .iter()
            .filter(|op| matches!(op, GraphOp::Launch { .. }))
            .count() as u64;
        LaunchGraph {
            id: NEXT_GRAPH_ID.fetch_add(1, Ordering::Relaxed),
            ops: self.ops,
            launches,
            phase_defects: self.phase_defects,
        }
    }
}

/// One node of a [`GraphSummary`]: the bodyless mirror of the recorded
/// op, carrying everything static analysis needs and nothing it does
/// not (no closures, no lifetimes).
#[derive(Debug, Clone)]
pub enum GraphNodeInfo {
    Launch {
        kernel: String,
        items: u64,
        effective_bytes: f64,
        reductions: usize,
        fp64: bool,
        /// Atomic RMW updates the kernel declares (op2 atomics scheme).
        atomic_updates: u64,
        meta: LaunchMeta,
    },
    Exchange {
        bytes: f64,
        messages: u64,
        dats: Vec<u32>,
    },
    Transfer {
        bytes: f64,
        dats: Vec<u32>,
        dir: TransferDir,
    },
    PhaseBegin {
        name: &'static str,
    },
    PhaseEnd,
}

/// An owned, analysis-ready snapshot of a recorded graph, delivered to
/// the session's graph observer on replay (see
/// [`Session::set_graph_observer`]).
#[derive(Debug, Clone)]
pub struct GraphSummary {
    /// Process-unique id of the recorded graph — observers seeing the
    /// same id are seeing repeat replays of one recording.
    pub id: u64,
    pub nodes: Vec<GraphNodeInfo>,
    /// Unbalanced `phase`/`end_phase` nesting captured at record time.
    pub phase_defects: Vec<String>,
}

/// A frozen launch sequence, replayable any number of times on any
/// session whose config the recorded kernels are valid for.
pub struct LaunchGraph<'a> {
    id: u64,
    ops: Vec<GraphOp<'a>>,
    launches: u64,
    phase_defects: Vec<String>,
}

impl LaunchGraph<'_> {
    /// Ops in the graph.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the graph records nothing.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Launch ops in the graph.
    pub fn n_launches(&self) -> u64 {
        self.launches
    }

    /// Process-unique id of this recording.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Unbalanced phase nesting captured while recording.
    pub fn phase_defects(&self) -> &[String] {
        &self.phase_defects
    }

    /// Build the owned, bodyless snapshot of this graph for static
    /// analysis. Only built when a graph observer is installed.
    pub fn summary(&self) -> GraphSummary {
        let nodes = self
            .ops
            .iter()
            .map(|op| match op {
                GraphOp::Launch { node, meta, .. } => {
                    let fp = &node.kernel.footprint;
                    GraphNodeInfo::Launch {
                        kernel: fp.name.clone(),
                        items: fp.items,
                        effective_bytes: fp.effective_bytes,
                        reductions: fp.reductions,
                        fp64: fp.precision == Precision::F64,
                        atomic_updates: fp.atomics.as_ref().map_or(0, |a| a.updates),
                        meta: meta.clone(),
                    }
                }
                GraphOp::Exchange {
                    bytes,
                    messages,
                    dats,
                } => GraphNodeInfo::Exchange {
                    bytes: *bytes,
                    messages: *messages,
                    dats: dats.clone(),
                },
                GraphOp::Transfer { bytes, dats, dir } => GraphNodeInfo::Transfer {
                    bytes: *bytes,
                    dats: dats.clone(),
                    dir: *dir,
                },
                GraphOp::PhaseBegin { name } => GraphNodeInfo::PhaseBegin { name },
                GraphOp::PhaseEnd => GraphNodeInfo::PhaseEnd,
            })
            .collect();
        GraphSummary {
            id: self.id,
            nodes,
            phase_defects: self.phase_defects.clone(),
        }
    }

    /// Deliver this graph's summary to the session's graph observer, if
    /// one is installed. Costs one atomic load when none is.
    fn notify_observer(&self, session: &Session) {
        if let Some(obs) = session.graph_observer() {
            obs(&self.summary());
        }
    }

    /// Replay the graph on `session`: price every launch in one pass
    /// (served by the fingerprint cache under a single lock), execute
    /// the functional bodies, then append the whole sequence to the
    /// ledger under a single lock acquisition. Observers fire per record
    /// in ledger order after the lock is released.
    ///
    /// On sessions configured with [`crate::SessionConfig::eager_launches`]
    /// the replay degrades to per-launch eager calls; the resulting
    /// ledger is bit-identical either way.
    pub fn replay(&self, session: &Session) {
        self.notify_observer(session);
        if !session.config().graph_replay {
            return self.replay_eager(session);
        }
        let replay_span = telemetry::SpanTimer::start();
        replay_graphs(session, &[self]);
        if let Some(t) = replay_span {
            t.finish(
                telemetry::SpanKind::Replay,
                "graph.replay",
                self.launches,
                0.0,
            );
        }
    }

    /// Price stage: one entry per op (`None` for non-launches), served
    /// by the caller-held cache lock.
    fn price_stage(&self, ctx: &PriceContext<'_>, cache: &mut PriceCache) -> Vec<Option<Priced>> {
        self.ops
            .iter()
            .map(|op| match op {
                GraphOp::Launch { node, .. } => Some(cache.price(ctx, &node.kernel, node.key)),
                _ => None,
            })
            .collect()
    }

    /// Execute stage: run the functional bodies with per-launch spans.
    fn execute_stage(&self, priced: &[Option<Priced>], executes: bool) {
        let mut phases: Vec<(&'static str, Option<telemetry::SpanTimer>)> = Vec::new();
        let flight = telemetry::flight::recording();
        for (op, p) in self.ops.iter().zip(priced) {
            match op {
                GraphOp::Launch { node, body, .. } => {
                    let span = LaunchSpan::start();
                    let p = p.as_ref().expect("launch ops are priced");
                    if flight {
                        telemetry::flight::span_open(telemetry::SpanKind::Launch, &p.name);
                    }
                    body(executes);
                    if flight {
                        telemetry::flight::span_close(telemetry::SpanKind::Launch, &p.name);
                    }
                    span.finish(
                        Arc::clone(&p.name),
                        node.kernel.footprint.items,
                        node.kernel.footprint.effective_bytes,
                        p.time.total,
                    );
                }
                GraphOp::PhaseBegin { name } => {
                    if flight {
                        telemetry::flight::span_open(telemetry::SpanKind::Phase, name);
                    }
                    phases.push((name, telemetry::SpanTimer::start()));
                }
                GraphOp::PhaseEnd => {
                    if let Some((name, t)) = phases.pop() {
                        if flight {
                            telemetry::flight::span_close(telemetry::SpanKind::Phase, name);
                        }
                        if let Some(t) = t {
                            t.finish(telemetry::SpanKind::Phase, name, 0, 0.0);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// Commit stage: append ops in recorded order into the caller-held
    /// ledger lock, pushing each launch's record for post-unlock
    /// observer delivery. Comm ops price through the caller-held price
    /// cache and residency tracker — in recorded order, so elision
    /// decisions are identical to the eager fallback's.
    fn commit_stage(
        &self,
        session: &Session,
        led: &mut Ledger,
        cache: &mut PriceCache,
        res: &mut ResidencyTracker,
        priced: &[Option<Priced>],
        observations: &mut Vec<LaunchRecord>,
    ) {
        let pricing = session.config().transfer_pricing;
        for (op, p) in self.ops.iter().zip(priced) {
            match op {
                GraphOp::Launch { meta, .. } => {
                    let rec = led.append(p.as_ref().expect("launch ops are priced"));
                    observations.push(rec);
                    if pricing {
                        res.apply_launch(meta);
                    }
                }
                GraphOp::Exchange {
                    bytes, messages, ..
                } => {
                    if let Some(t) = session.comm_exchange_time(*bytes, *messages, cache) {
                        led.charge_comm(t);
                    }
                }
                GraphOp::Transfer { bytes, dats, dir } => {
                    if let Some(t) = session.comm_transfer_time(*bytes, dats, *dir, cache, res) {
                        led.charge_comm(t);
                    }
                }
                _ => {}
            }
        }
    }

    /// The eager fallback: each op goes through the per-launch session
    /// API, exactly as un-graphed code would.
    pub(crate) fn replay_eager(&self, session: &Session) {
        let executes = session.executes();
        let mut phases: Vec<(&'static str, Option<telemetry::SpanTimer>)> = Vec::new();
        let flight = telemetry::flight::recording();
        for op in &self.ops {
            match op {
                GraphOp::Launch { node, meta, body } => {
                    // Launch flight events come from `launch_timed`.
                    session.launch(&node.kernel, || body(executes));
                    session.note_kernel_residency(meta);
                }
                GraphOp::Exchange {
                    bytes, messages, ..
                } => session.exchange(*bytes, *messages),
                GraphOp::Transfer { bytes, dats, dir } => session.transfer_with(*bytes, dats, *dir),
                GraphOp::PhaseBegin { name } => {
                    if flight {
                        telemetry::flight::span_open(telemetry::SpanKind::Phase, name);
                    }
                    phases.push((name, telemetry::SpanTimer::start()));
                }
                GraphOp::PhaseEnd => {
                    if let Some((name, t)) = phases.pop() {
                        if flight {
                            telemetry::flight::span_close(telemetry::SpanKind::Phase, name);
                        }
                        if let Some(t) = t {
                            t.finish(telemetry::SpanKind::Phase, name, 0, 0.0);
                        }
                    }
                }
            }
        }
    }
}

/// Replay several recorded graphs as **one** composed commit: every
/// launch across all graphs is priced under a single pricing-cache lock
/// acquisition, all bodies execute, and the whole concatenated sequence
/// commits under a single ledger lock acquisition, with observers fired
/// in ledger order after the lock drops.
///
/// The ledger ends bit-identical to replaying the graphs one at a time
/// in slice order (same op order, same f64 accumulation), which is what
/// lets the service batch N client submissions per shard without
/// changing any result — property-tested in `tests/service_batch.rs`.
///
/// On sessions configured with [`crate::SessionConfig::eager_launches`]
/// each graph degrades to per-launch eager calls, in the same order.
pub fn replay_all(session: &Session, graphs: &[&LaunchGraph<'_>]) {
    if graphs.is_empty() {
        return;
    }
    for g in graphs {
        g.notify_observer(session);
    }
    if !session.config().graph_replay {
        for g in graphs {
            g.replay_eager(session);
        }
        return;
    }
    let span = telemetry::SpanTimer::start();
    replay_graphs(session, graphs);
    if let Some(t) = span {
        t.finish(
            telemetry::SpanKind::Replay,
            "graph.replay_batch",
            graphs.iter().map(|g| g.n_launches()).sum(),
            0.0,
        );
    }
}

/// The shared three-stage core behind [`LaunchGraph::replay`] and
/// [`replay_all`]: price all graphs (one cache lock), execute all
/// bodies, commit all ops (one ledger lock), then deliver observations.
fn replay_graphs(session: &Session, graphs: &[&LaunchGraph<'_>]) {
    let priced: Vec<Vec<Option<Priced>>> = {
        let ctx = session.price_context();
        let mut cache = session.price_cache();
        graphs
            .iter()
            .map(|g| g.price_stage(&ctx, &mut cache))
            .collect()
    };

    let executes = session.executes();
    for (g, p) in graphs.iter().zip(&priced) {
        g.execute_stage(p, executes);
    }

    let mut observations: Vec<LaunchRecord> = Vec::new();
    let observer = {
        // Lock order: ledger → cache → residency (see `Session`).
        let mut led = session.ledger();
        let mut cache = session.price_cache();
        let mut res = session.residency_tracker();
        for (g, p) in graphs.iter().zip(&priced) {
            g.commit_stage(
                session,
                &mut led,
                &mut cache,
                &mut res,
                p,
                &mut observations,
            );
        }
        led.observer.clone()
    };
    if let Some(obs) = observer {
        for rec in &observations {
            obs(rec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionConfig;
    use crate::toolchain::Toolchain;
    use machine_model::PlatformId;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn session() -> Session {
        Session::create(SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda).app("graph"))
            .unwrap()
    }

    fn eager_session() -> Session {
        Session::create(
            SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda)
                .app("graph")
                .eager_launches(),
        )
        .unwrap()
    }

    #[test]
    fn replay_matches_eager_launches_bit_for_bit() {
        let k1 = Kernel::streaming("triad", 1 << 20, 3e7, 2e6);
        let k2 = Kernel::streaming("copy", 1 << 18, 4e6, 0.0);

        let batched = session();
        let eager = session();
        let mut g = batched.record();
        g.launch(&k1, |_| {});
        g.launch(&k2, |_| {});
        g.transfer(1e6);
        g.exchange(1e6, 8);
        let g = g.finish();
        for _ in 0..3 {
            g.replay(&batched);
        }
        for _ in 0..3 {
            eager.launch(&k1, || ());
            eager.launch(&k2, || ());
            eager.transfer(1e6);
            eager.exchange(1e6, 8);
        }
        assert_eq!(batched.ledger_digest(), eager.ledger_digest());
        assert_eq!(batched.elapsed().to_bits(), eager.elapsed().to_bits());
    }

    #[test]
    fn eager_launches_config_falls_back_per_launch_with_equal_ledger() {
        let k = Kernel::streaming("x", 1 << 16, 1e6, 0.0);
        let batched = session();
        let eager = eager_session();
        for s in [&batched, &eager] {
            let mut g = s.record();
            g.phase("step");
            g.launch(&k, |_| {});
            g.launch(&k, |_| {});
            g.end_phase();
            let g = g.finish();
            assert_eq!(g.n_launches(), 2);
            g.replay(s);
            g.replay(s);
        }
        assert_eq!(batched.ledger_digest(), eager.ledger_digest());
        assert_eq!(batched.records().len(), 4);
    }

    #[test]
    fn bodies_observe_executes_and_run_per_replay() {
        let k = Kernel::streaming("x", 1 << 16, 1e6, 0.0);
        let live = session();
        let dry = Session::create(
            SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda)
                .app("graph")
                .dry_run(),
        )
        .unwrap();
        let ran = AtomicUsize::new(0);
        let mut g = live.record();
        g.launch(&k, |executes| {
            if executes {
                ran.fetch_add(1, Ordering::Relaxed);
            }
        });
        let g = g.finish();
        g.replay(&live);
        g.replay(&live);
        assert_eq!(ran.load(Ordering::Relaxed), 2);
        g.replay(&dry);
        assert_eq!(ran.load(Ordering::Relaxed), 2, "dry runs price only");
        assert_eq!(dry.records().len(), 1);
    }

    #[test]
    fn replay_after_reset_reprices_identically() {
        let k = Kernel::streaming("triad", 1 << 20, 3e7, 0.0);
        let s = session();
        let mut g = s.record();
        g.launch(&k, |_| {});
        let g = g.finish();
        g.replay(&s);
        let first = s.ledger_digest();
        s.reset();
        g.replay(&s);
        assert_eq!(
            s.ledger_digest(),
            first,
            "reset + replay reproduces the ledger"
        );
    }

    #[test]
    fn observers_fire_in_ledger_order_after_commit() {
        let k1 = Kernel::streaming("a", 1 << 16, 1e6, 0.0);
        let k2 = Kernel::streaming("b", 1 << 16, 1e6, 0.0);
        let s = session();
        let seen: Arc<parkit::sync::Mutex<Vec<String>>> =
            Arc::new(parkit::sync::Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        s.set_launch_observer(Some(Arc::new(move |r: &LaunchRecord| {
            sink.lock().push(r.name.to_string());
        })));
        let mut g = s.record();
        g.launch(&k1, |_| {});
        g.launch(&k2, |_| {});
        let g = g.finish();
        g.replay(&s);
        assert_eq!(&*seen.lock(), &["a", "b"]);
    }

    #[test]
    fn replay_all_matches_sequential_replays_bit_for_bit() {
        let k1 = Kernel::streaming("triad", 1 << 20, 3e7, 2e6);
        let k2 = Kernel::streaming("copy", 1 << 18, 4e6, 0.0);
        fn make<'s>(
            s: &'s Session,
            k1: &Kernel,
            k2: &Kernel,
        ) -> (LaunchGraph<'s>, LaunchGraph<'s>) {
            let mut a = s.record();
            a.launch(k1, |_| {});
            a.transfer(2e6);
            let mut b = s.record();
            b.launch(k2, |_| {});
            b.exchange(1e6, 4);
            b.launch(k1, |_| {});
            (a.finish(), b.finish())
        }
        let batched = session();
        let serial = session();
        {
            let (a, b) = make(&batched, &k1, &k2);
            replay_all(&batched, &[&a, &b]);
            replay_all(&batched, &[&b, &a]);
        }
        {
            let (a, b) = make(&serial, &k1, &k2);
            a.replay(&serial);
            b.replay(&serial);
            b.replay(&serial);
            a.replay(&serial);
        }
        assert_eq!(batched.ledger_digest(), serial.ledger_digest());
        assert_eq!(batched.elapsed().to_bits(), serial.elapsed().to_bits());
        // Eager sessions degrade per graph, same ledger.
        let eager = eager_session();
        let (a, b) = make(&eager, &k1, &k2);
        replay_all(&eager, &[&a, &b]);
        replay_all(&eager, &[&b, &a]);
        assert_eq!(eager.ledger_digest(), batched.ledger_digest());
    }

    #[test]
    fn replay_all_of_nothing_is_a_no_op() {
        let s = session();
        replay_all(&s, &[]);
        assert_eq!(s.records().len(), 0);
        assert_eq!(s.elapsed(), 0.0);
    }

    #[test]
    fn unbalanced_phase_nesting_is_a_recorded_defect() {
        let s = session();
        let k = Kernel::streaming("x", 1 << 10, 1e4, 0.0);

        // Balanced nesting: no defects.
        let mut g = s.record();
        g.phase("outer");
        g.phase("inner");
        g.launch(&k, |_| {});
        g.end_phase();
        g.end_phase();
        assert!(g.finish().phase_defects().is_empty());

        // end_phase on an empty stack.
        let mut g = s.record();
        g.launch(&k, |_| {});
        g.end_phase();
        let g = g.finish();
        assert_eq!(g.phase_defects().len(), 1);
        assert!(g.phase_defects()[0].contains("no open phase"));
        // Replay still works (the pop is tolerated at run time).
        g.replay(&s);

        // Phase left open at finish.
        let mut g = s.record();
        g.phase("halo_exchange");
        g.launch(&k, |_| {});
        let g = g.finish();
        assert_eq!(g.phase_defects().len(), 1);
        assert!(g.phase_defects()[0].contains("halo_exchange"));
        assert!(g.phase_defects()[0].contains("never closed"));
        // Defects travel into the summary.
        assert_eq!(g.summary().phase_defects, g.phase_defects());
    }

    #[test]
    fn summary_mirrors_ops_with_metadata_and_without_bodies() {
        use crate::launch::record::{AccessMode, DatAccess, LaunchMeta};
        let s = session();
        let k = Kernel::streaming("triad", 1 << 12, 1e5, 0.0);
        let mut g = s.record();
        g.phase("step");
        g.launch_with_meta(
            &k,
            LaunchMeta::new(
                vec![
                    DatAccess {
                        dat: 7,
                        mode: AccessMode::Read,
                        radius: [1, 1, 0],
                        elem_bytes: 8.0,
                    },
                    DatAccess {
                        dat: 9,
                        mode: AccessMode::Write,
                        radius: [0; 3],
                        elem_bytes: 8.0,
                    },
                ],
                [0, 0, 0],
                [64, 64, 1],
            ),
            |_| {},
        );
        g.launch(&k, |_| {}); // plain launch: opaque metadata
        g.exchange_dats(4096.0, 8, vec![7]);
        g.transfer_dats(1024.0, vec![9]);
        g.end_phase();
        let g = g.finish();
        let sum = g.summary();
        assert_eq!(sum.id, g.id());
        assert_eq!(sum.nodes.len(), 6);
        match &sum.nodes[1] {
            GraphNodeInfo::Launch { kernel, meta, .. } => {
                assert_eq!(kernel, "triad");
                assert!(meta.transparent());
                assert_eq!(meta.accesses.len(), 2);
                assert!(meta.accesses[0].stencil());
                assert!(!meta.accesses[1].stencil());
            }
            other => panic!("expected launch, got {other:?}"),
        }
        match &sum.nodes[2] {
            GraphNodeInfo::Launch { meta, .. } => {
                assert!(meta.opaque && !meta.transparent());
            }
            other => panic!("expected launch, got {other:?}"),
        }
        match &sum.nodes[3] {
            GraphNodeInfo::Exchange { dats, bytes, .. } => {
                assert_eq!(dats, &[7]);
                assert_eq!(*bytes, 4096.0);
            }
            other => panic!("expected exchange, got {other:?}"),
        }
        match &sum.nodes[4] {
            GraphNodeInfo::Transfer { dats, .. } => assert_eq!(dats, &[9]),
            other => panic!("expected transfer, got {other:?}"),
        }
    }

    #[test]
    fn graph_observer_sees_each_replay_and_metadata_changes_nothing() {
        use crate::launch::record::{AccessMode, DatAccess, LaunchMeta};
        let k = Kernel::streaming("triad", 1 << 20, 3e7, 2e6);

        // Identical sequences, one with metadata, one without: the
        // ledgers must stay bit-identical (metadata never prices).
        let plain = session();
        let tagged = session();
        let mut g1 = plain.record();
        g1.launch(&k, |_| {});
        g1.exchange(1e6, 8);
        let g1 = g1.finish();
        let mut g2 = tagged.record();
        g2.launch_with_meta(
            &k,
            LaunchMeta::new(
                vec![DatAccess {
                    dat: 3,
                    mode: AccessMode::ReadWrite,
                    radius: [0; 3],
                    elem_bytes: 8.0,
                }],
                [0; 3],
                [8, 8, 8],
            ),
            |_| {},
        );
        g2.exchange_dats(1e6, 8, vec![3]);
        let g2 = g2.finish();

        let seen = Arc::new(parkit::sync::Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        tagged.set_graph_observer(Some(Arc::new(move |s: &GraphSummary| {
            sink.lock().push(s.id);
        })));
        for _ in 0..3 {
            g1.replay(&plain);
            g2.replay(&tagged);
        }
        tagged.set_graph_observer(None);
        g2.replay(&tagged);
        g1.replay(&plain);

        assert_eq!(&*seen.lock(), &[g2.id(), g2.id(), g2.id()]);
        assert_eq!(plain.ledger_digest(), tagged.ledger_digest());
        assert_eq!(plain.elapsed().to_bits(), tagged.elapsed().to_bits());
    }
}
