//! Record-once / replay-many launch graphs.
//!
//! A [`GraphBuilder`] records a sequence of launches (plus transfers,
//! halo exchanges and phase markers) as [`LaunchNode`]s with functional
//! bodies. [`LaunchGraph::replay`] then runs the four launch layers in
//! batch: the whole graph is priced under **one** pricing-cache lock
//! acquisition, the bodies execute back-to-back, and the whole sequence
//! commits under **one** ledger lock acquisition — instead of one of
//! each per launch on the eager path.
//!
//! The non-negotiable invariant: a replayed graph leaves the ledger
//! **bit-identical** to launching the same sequence eagerly. Commit
//! applies ops in recorded order with the same floating-point
//! accumulation, the same interning and the same observer ordering. A
//! session built with [`SessionConfig::eager_launches`] makes `replay`
//! fall back to the per-launch path, which is how the equivalence tests
//! cross-check the two.

use crate::kernel::Kernel;
use crate::launch::commit::{exchange_cost, transfer_cost, Ledger};
use crate::launch::execute::LaunchSpan;
use crate::launch::price::{PriceCache, PriceContext, Priced};
use crate::launch::record::LaunchNode;
use crate::session::{LaunchRecord, Session};
use std::sync::Arc;

/// One recorded operation.
// Launch dominates real graphs (phases/exchanges are bookkeeping), so
// the large variant stays inline rather than paying a Box per node.
#[allow(clippy::large_enum_variant)]
enum GraphOp<'a> {
    /// A kernel launch: the fingerprinted node plus its functional body.
    /// The body receives `session.executes()` at replay time.
    Launch {
        node: LaunchNode,
        body: Box<dyn Fn(bool) + Sync + 'a>,
    },
    /// A halo exchange (`Session::exchange` equivalent).
    Exchange { bytes: f64, messages: u64 },
    /// A host↔device transfer (`Session::transfer` equivalent).
    Transfer { bytes: f64 },
    /// Open a named phase span (telemetry only, no ledger effect).
    PhaseBegin { name: &'static str },
    /// Close the innermost open phase span.
    PhaseEnd,
}

/// Records a launch sequence; [`GraphBuilder::finish`] freezes it into a
/// [`LaunchGraph`]. Obtained from [`Session::record`].
#[derive(Default)]
pub struct GraphBuilder<'a> {
    ops: Vec<GraphOp<'a>>,
}

impl<'a> GraphBuilder<'a> {
    pub(crate) fn new() -> GraphBuilder<'a> {
        GraphBuilder { ops: Vec::new() }
    }

    /// Record one launch. `body` is the functional kernel body; it is
    /// called on every replay with `session.executes()` as its argument
    /// (dry-run sessions replay pricing without running bodies).
    pub fn launch(&mut self, kernel: &Kernel, body: impl Fn(bool) + Sync + 'a) {
        self.ops.push(GraphOp::Launch {
            node: LaunchNode::new(kernel),
            body: Box::new(body),
        });
    }

    /// Record a halo exchange (see [`Session::exchange`]).
    pub fn exchange(&mut self, bytes: f64, messages: u64) {
        self.ops.push(GraphOp::Exchange { bytes, messages });
    }

    /// Record a host↔device transfer (see [`Session::transfer`]).
    pub fn transfer(&mut self, bytes: f64) {
        self.ops.push(GraphOp::Transfer { bytes });
    }

    /// Open a named phase span covering the ops recorded until the
    /// matching [`GraphBuilder::end_phase`].
    pub fn phase(&mut self, name: &'static str) {
        self.ops.push(GraphOp::PhaseBegin { name });
    }

    /// Close the innermost open phase.
    pub fn end_phase(&mut self) {
        self.ops.push(GraphOp::PhaseEnd);
    }

    /// Ops recorded so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Freeze the recording.
    pub fn finish(self) -> LaunchGraph<'a> {
        let launches = self
            .ops
            .iter()
            .filter(|op| matches!(op, GraphOp::Launch { .. }))
            .count() as u64;
        LaunchGraph {
            ops: self.ops,
            launches,
        }
    }
}

/// A frozen launch sequence, replayable any number of times on any
/// session whose config the recorded kernels are valid for.
pub struct LaunchGraph<'a> {
    ops: Vec<GraphOp<'a>>,
    launches: u64,
}

impl LaunchGraph<'_> {
    /// Ops in the graph.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the graph records nothing.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Launch ops in the graph.
    pub fn n_launches(&self) -> u64 {
        self.launches
    }

    /// Replay the graph on `session`: price every launch in one pass
    /// (served by the fingerprint cache under a single lock), execute
    /// the functional bodies, then append the whole sequence to the
    /// ledger under a single lock acquisition. Observers fire per record
    /// in ledger order after the lock is released.
    ///
    /// On sessions configured with [`crate::SessionConfig::eager_launches`]
    /// the replay degrades to per-launch eager calls; the resulting
    /// ledger is bit-identical either way.
    pub fn replay(&self, session: &Session) {
        if !session.config().graph_replay {
            return self.replay_eager(session);
        }
        let replay_span = telemetry::SpanTimer::start();
        replay_graphs(session, &[self]);
        if let Some(t) = replay_span {
            t.finish(
                telemetry::SpanKind::Replay,
                "graph.replay",
                self.launches,
                0.0,
            );
        }
    }

    /// Price stage: one entry per op (`None` for non-launches), served
    /// by the caller-held cache lock.
    fn price_stage(&self, ctx: &PriceContext<'_>, cache: &mut PriceCache) -> Vec<Option<Priced>> {
        self.ops
            .iter()
            .map(|op| match op {
                GraphOp::Launch { node, .. } => Some(cache.price(ctx, &node.kernel, node.key)),
                _ => None,
            })
            .collect()
    }

    /// Execute stage: run the functional bodies with per-launch spans.
    fn execute_stage(&self, priced: &[Option<Priced>], executes: bool) {
        let mut phases: Vec<(&'static str, Option<telemetry::SpanTimer>)> = Vec::new();
        for (op, p) in self.ops.iter().zip(priced) {
            match op {
                GraphOp::Launch { node, body } => {
                    let span = LaunchSpan::start();
                    body(executes);
                    let p = p.as_ref().expect("launch ops are priced");
                    span.finish(
                        Arc::clone(&p.name),
                        node.kernel.footprint.items,
                        node.kernel.footprint.effective_bytes,
                        p.time.total,
                    );
                }
                GraphOp::PhaseBegin { name } => {
                    phases.push((name, telemetry::SpanTimer::start()));
                }
                GraphOp::PhaseEnd => {
                    if let Some((name, Some(t))) = phases.pop() {
                        t.finish(telemetry::SpanKind::Phase, name, 0, 0.0);
                    }
                }
                _ => {}
            }
        }
    }

    /// Commit stage: append ops in recorded order into the caller-held
    /// ledger lock, pushing each launch's record for post-unlock
    /// observer delivery.
    fn commit_stage(
        &self,
        session: &Session,
        led: &mut Ledger,
        priced: &[Option<Priced>],
        observations: &mut Vec<LaunchRecord>,
    ) {
        for (op, p) in self.ops.iter().zip(priced) {
            match op {
                GraphOp::Launch { .. } => {
                    let rec = led.append(p.as_ref().expect("launch ops are priced"));
                    observations.push(rec);
                }
                GraphOp::Exchange { bytes, messages } => {
                    if let Some(t) =
                        exchange_cost(session.platform(), session.ranks(), *bytes, *messages)
                    {
                        led.charge_comm(t);
                    }
                }
                GraphOp::Transfer { bytes } => {
                    if let Some(t) = transfer_cost(session.platform(), *bytes) {
                        led.charge_comm(t);
                    }
                }
                _ => {}
            }
        }
    }

    /// The eager fallback: each op goes through the per-launch session
    /// API, exactly as un-graphed code would.
    pub(crate) fn replay_eager(&self, session: &Session) {
        let executes = session.executes();
        let mut phases: Vec<(&'static str, Option<telemetry::SpanTimer>)> = Vec::new();
        for op in &self.ops {
            match op {
                GraphOp::Launch { node, body } => {
                    session.launch(&node.kernel, || body(executes));
                }
                GraphOp::Exchange { bytes, messages } => session.exchange(*bytes, *messages),
                GraphOp::Transfer { bytes } => session.transfer(*bytes),
                GraphOp::PhaseBegin { name } => {
                    phases.push((name, telemetry::SpanTimer::start()));
                }
                GraphOp::PhaseEnd => {
                    if let Some((name, Some(t))) = phases.pop() {
                        t.finish(telemetry::SpanKind::Phase, name, 0, 0.0);
                    }
                }
            }
        }
    }
}

/// Replay several recorded graphs as **one** composed commit: every
/// launch across all graphs is priced under a single pricing-cache lock
/// acquisition, all bodies execute, and the whole concatenated sequence
/// commits under a single ledger lock acquisition, with observers fired
/// in ledger order after the lock drops.
///
/// The ledger ends bit-identical to replaying the graphs one at a time
/// in slice order (same op order, same f64 accumulation), which is what
/// lets the service batch N client submissions per shard without
/// changing any result — property-tested in `tests/service_batch.rs`.
///
/// On sessions configured with [`crate::SessionConfig::eager_launches`]
/// each graph degrades to per-launch eager calls, in the same order.
pub fn replay_all(session: &Session, graphs: &[&LaunchGraph<'_>]) {
    if graphs.is_empty() {
        return;
    }
    if !session.config().graph_replay {
        for g in graphs {
            g.replay_eager(session);
        }
        return;
    }
    let span = telemetry::SpanTimer::start();
    replay_graphs(session, graphs);
    if let Some(t) = span {
        t.finish(
            telemetry::SpanKind::Replay,
            "graph.replay_batch",
            graphs.iter().map(|g| g.n_launches()).sum(),
            0.0,
        );
    }
}

/// The shared three-stage core behind [`LaunchGraph::replay`] and
/// [`replay_all`]: price all graphs (one cache lock), execute all
/// bodies, commit all ops (one ledger lock), then deliver observations.
fn replay_graphs(session: &Session, graphs: &[&LaunchGraph<'_>]) {
    let priced: Vec<Vec<Option<Priced>>> = {
        let ctx = session.price_context();
        let mut cache = session.price_cache();
        graphs
            .iter()
            .map(|g| g.price_stage(&ctx, &mut cache))
            .collect()
    };

    let executes = session.executes();
    for (g, p) in graphs.iter().zip(&priced) {
        g.execute_stage(p, executes);
    }

    let mut observations: Vec<LaunchRecord> = Vec::new();
    let observer = {
        let mut led = session.ledger();
        for (g, p) in graphs.iter().zip(&priced) {
            g.commit_stage(session, &mut led, p, &mut observations);
        }
        led.observer.clone()
    };
    if let Some(obs) = observer {
        for rec in &observations {
            obs(rec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionConfig;
    use crate::toolchain::Toolchain;
    use machine_model::PlatformId;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn session() -> Session {
        Session::create(SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda).app("graph"))
            .unwrap()
    }

    fn eager_session() -> Session {
        Session::create(
            SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda)
                .app("graph")
                .eager_launches(),
        )
        .unwrap()
    }

    #[test]
    fn replay_matches_eager_launches_bit_for_bit() {
        let k1 = Kernel::streaming("triad", 1 << 20, 3e7, 2e6);
        let k2 = Kernel::streaming("copy", 1 << 18, 4e6, 0.0);

        let batched = session();
        let eager = session();
        let mut g = batched.record();
        g.launch(&k1, |_| {});
        g.launch(&k2, |_| {});
        g.transfer(1e6);
        g.exchange(1e6, 8);
        let g = g.finish();
        for _ in 0..3 {
            g.replay(&batched);
        }
        for _ in 0..3 {
            eager.launch(&k1, || ());
            eager.launch(&k2, || ());
            eager.transfer(1e6);
            eager.exchange(1e6, 8);
        }
        assert_eq!(batched.ledger_digest(), eager.ledger_digest());
        assert_eq!(batched.elapsed().to_bits(), eager.elapsed().to_bits());
    }

    #[test]
    fn eager_launches_config_falls_back_per_launch_with_equal_ledger() {
        let k = Kernel::streaming("x", 1 << 16, 1e6, 0.0);
        let batched = session();
        let eager = eager_session();
        for s in [&batched, &eager] {
            let mut g = s.record();
            g.phase("step");
            g.launch(&k, |_| {});
            g.launch(&k, |_| {});
            g.end_phase();
            let g = g.finish();
            assert_eq!(g.n_launches(), 2);
            g.replay(s);
            g.replay(s);
        }
        assert_eq!(batched.ledger_digest(), eager.ledger_digest());
        assert_eq!(batched.records().len(), 4);
    }

    #[test]
    fn bodies_observe_executes_and_run_per_replay() {
        let k = Kernel::streaming("x", 1 << 16, 1e6, 0.0);
        let live = session();
        let dry = Session::create(
            SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda)
                .app("graph")
                .dry_run(),
        )
        .unwrap();
        let ran = AtomicUsize::new(0);
        let mut g = live.record();
        g.launch(&k, |executes| {
            if executes {
                ran.fetch_add(1, Ordering::Relaxed);
            }
        });
        let g = g.finish();
        g.replay(&live);
        g.replay(&live);
        assert_eq!(ran.load(Ordering::Relaxed), 2);
        g.replay(&dry);
        assert_eq!(ran.load(Ordering::Relaxed), 2, "dry runs price only");
        assert_eq!(dry.records().len(), 1);
    }

    #[test]
    fn replay_after_reset_reprices_identically() {
        let k = Kernel::streaming("triad", 1 << 20, 3e7, 0.0);
        let s = session();
        let mut g = s.record();
        g.launch(&k, |_| {});
        let g = g.finish();
        g.replay(&s);
        let first = s.ledger_digest();
        s.reset();
        g.replay(&s);
        assert_eq!(
            s.ledger_digest(),
            first,
            "reset + replay reproduces the ledger"
        );
    }

    #[test]
    fn observers_fire_in_ledger_order_after_commit() {
        let k1 = Kernel::streaming("a", 1 << 16, 1e6, 0.0);
        let k2 = Kernel::streaming("b", 1 << 16, 1e6, 0.0);
        let s = session();
        let seen: Arc<parkit::sync::Mutex<Vec<String>>> =
            Arc::new(parkit::sync::Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        s.set_launch_observer(Some(Arc::new(move |r: &LaunchRecord| {
            sink.lock().push(r.name.to_string());
        })));
        let mut g = s.record();
        g.launch(&k1, |_| {});
        g.launch(&k2, |_| {});
        let g = g.finish();
        g.replay(&s);
        assert_eq!(&*seen.lock(), &["a", "b"]);
    }

    #[test]
    fn replay_all_matches_sequential_replays_bit_for_bit() {
        let k1 = Kernel::streaming("triad", 1 << 20, 3e7, 2e6);
        let k2 = Kernel::streaming("copy", 1 << 18, 4e6, 0.0);
        fn make<'s>(
            s: &'s Session,
            k1: &Kernel,
            k2: &Kernel,
        ) -> (LaunchGraph<'s>, LaunchGraph<'s>) {
            let mut a = s.record();
            a.launch(k1, |_| {});
            a.transfer(2e6);
            let mut b = s.record();
            b.launch(k2, |_| {});
            b.exchange(1e6, 4);
            b.launch(k1, |_| {});
            (a.finish(), b.finish())
        }
        let batched = session();
        let serial = session();
        {
            let (a, b) = make(&batched, &k1, &k2);
            replay_all(&batched, &[&a, &b]);
            replay_all(&batched, &[&b, &a]);
        }
        {
            let (a, b) = make(&serial, &k1, &k2);
            a.replay(&serial);
            b.replay(&serial);
            b.replay(&serial);
            a.replay(&serial);
        }
        assert_eq!(batched.ledger_digest(), serial.ledger_digest());
        assert_eq!(batched.elapsed().to_bits(), serial.elapsed().to_bits());
        // Eager sessions degrade per graph, same ledger.
        let eager = eager_session();
        let (a, b) = make(&eager, &k1, &k2);
        replay_all(&eager, &[&a, &b]);
        replay_all(&eager, &[&b, &a]);
        assert_eq!(eager.ledger_digest(), batched.ledger_digest());
    }

    #[test]
    fn replay_all_of_nothing_is_a_no_op() {
        let s = session();
        replay_all(&s, &[]);
        assert_eq!(s.records().len(), 0);
        assert_eq!(s.elapsed(), 0.0);
    }
}
