//! Toolchain models: DPC++, OpenSYCL, and the native baselines.
//!
//! A toolchain turns a [`Kernel`](crate::Kernel) into an
//! [`ExecProfile`](machine_model::ExecProfile): which driver path the
//! launch takes, what work-group shape it gets (the *flat* formulation
//! leaves this to a runtime heuristic; *nd_range* uses the app-tuned
//! shape), how well the body vectorises on CPUs, and which reduction
//! strategy is available. These mechanisms — not per-result tables — are
//! what make the figures come out the way the paper reports.

use crate::kernel::Kernel;
use machine_model::{BackendKind, ChipKind, ExecProfile, Platform, PlatformId, ReductionStrategy};

/// The programming approaches compared across the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Toolchain {
    /// Native CUDA (A100 baseline).
    NativeCuda,
    /// Native HIP (MI250X baseline).
    NativeHip,
    /// OpenMP offload with the vendor compiler (the "native" bar on the
    /// Max 1100; the Cray-compiled bar on the MI250X).
    OmpOffload,
    /// Pure MPI, one rank per core (CPU baseline).
    Mpi,
    /// Hybrid MPI+OpenMP, one rank per NUMA domain (CPU baseline).
    MpiOpenMp,
    /// Plain OpenMP, single process (used on the single-NUMA Altra).
    OpenMp,
    /// Intel's DPC++ / oneAPI C++ compiler.
    Dpcpp,
    /// OpenSYCL (hipSYCL), `omp.accelerated` on CPUs.
    OpenSycl,
}

impl Toolchain {
    /// Short label used in figures and reports.
    pub fn label(self) -> &'static str {
        match self {
            Toolchain::NativeCuda => "CUDA",
            Toolchain::NativeHip => "HIP",
            Toolchain::OmpOffload => "OMP-offload",
            Toolchain::Mpi => "MPI",
            Toolchain::MpiOpenMp => "MPI+OpenMP",
            Toolchain::OpenMp => "OpenMP",
            Toolchain::Dpcpp => "DPC++",
            Toolchain::OpenSycl => "OpenSYCL",
        }
    }

    /// Parse a label as produced by [`Toolchain::label`] (the study
    /// runner's wire format round-trips toolchains by label).
    pub fn parse(s: &str) -> Option<Toolchain> {
        Some(match s {
            "CUDA" => Toolchain::NativeCuda,
            "HIP" => Toolchain::NativeHip,
            "OMP-offload" => Toolchain::OmpOffload,
            "MPI" => Toolchain::Mpi,
            "MPI+OpenMP" => Toolchain::MpiOpenMp,
            "OpenMP" => Toolchain::OpenMp,
            "DPC++" => Toolchain::Dpcpp,
            "OpenSYCL" => Toolchain::OpenSycl,
            _ => return None,
        })
    }

    /// Is this one of the two SYCL compilers?
    pub fn is_sycl(self) -> bool {
        matches!(self, Toolchain::Dpcpp | Toolchain::OpenSycl)
    }

    /// Is this a platform-specific ("native", non-portable) approach?
    pub fn is_native(self) -> bool {
        !self.is_sycl()
    }

    /// Can this toolchain target the platform at all?
    ///
    /// * DPC++ supports all three GPUs, and CPUs only through Intel's
    ///   x86 OpenCL driver — so not the Ampere Altra (§4.2).
    /// * OpenSYCL targets all GPUs and, via OpenMP, every CPU.
    /// * CUDA/HIP are single-vendor; the OpenMP-offload bars exist only
    ///   where the paper shows them (MI250X via Cray, Max 1100 via icpx).
    /// * MPI/OpenMP family is CPU-only; the paper used MPI+OpenMP on the
    ///   dual-socket machines and plain MPI/OpenMP on the Altra.
    pub fn supports(self, platform: PlatformId) -> bool {
        use PlatformId::*;
        match self {
            Toolchain::NativeCuda => platform == A100,
            Toolchain::NativeHip => platform == Mi250x,
            Toolchain::OmpOffload => matches!(platform, Mi250x | Max1100),
            Toolchain::Mpi => !platform.is_gpu(),
            Toolchain::MpiOpenMp => matches!(platform, Xeon8360Y | GenoaX),
            Toolchain::OpenMp => !platform.is_gpu(),
            Toolchain::Dpcpp => platform != Altra,
            Toolchain::OpenSycl => true,
        }
    }

    /// The driver path kernel launches take on a platform.
    pub fn backend(self, platform: PlatformId) -> BackendKind {
        match self {
            Toolchain::NativeCuda => BackendKind::Cuda,
            Toolchain::NativeHip => BackendKind::Hip,
            Toolchain::OmpOffload => BackendKind::OmpOffload,
            Toolchain::Mpi => BackendKind::MpiRank,
            Toolchain::MpiOpenMp | Toolchain::OpenMp => BackendKind::OmpHost,
            Toolchain::Dpcpp => {
                if platform.is_gpu() {
                    BackendKind::SyclGpu
                } else {
                    // DPC++ reaches CPUs only through the OpenCL driver —
                    // the launch-overhead source the paper measures via
                    // CloverLeaf boundary loops (5.4-8.7 % of runtime).
                    BackendKind::OpenClCpu
                }
            }
            Toolchain::OpenSycl => {
                if platform.is_gpu() {
                    BackendKind::SyclGpu
                } else {
                    // `-opensycl-targets=omp.accelerated`: compiles to
                    // OpenMP, no per-launch driver cost.
                    BackendKind::OmpHost
                }
            }
        }
    }

    /// MPI ranks the execution is decomposed into on a platform.
    pub fn ranks(self, platform: &Platform) -> usize {
        match platform.chip {
            ChipKind::Cpu {
                sockets,
                cores_per_socket,
                numa_domains,
                ..
            } => match self {
                Toolchain::Mpi => sockets * cores_per_socket,
                Toolchain::MpiOpenMp => numa_domains,
                _ => 1,
            },
            ChipKind::Gpu { .. } => 1,
        }
    }

    /// Work-group shape for one kernel under a formulation.
    ///
    /// *Flat* defers to the runtime's heuristic — including its known
    /// pathologies (§4.1: "The DPC++ runtime chooses very poor workgroup
    /// sizes for a few kernels"; "the OpenSYCL version chooses suboptimal
    /// workgroup sizes in 3D"). *NdRange* uses the app-tuned shape.
    pub fn workgroup(
        self,
        platform: &Platform,
        variant: SyclVariant,
        kernel: &Kernel,
    ) -> [usize; 3] {
        let domain = kernel.domain();
        if let ChipKind::Cpu { .. } = platform.chip {
            // On CPUs a "work-group" is the per-thread chunk; shape only
            // matters for vectorisation, which the traits model covers.
            let cores = platform.chip.cores().max(1);
            let chunk = (kernel.footprint.items as usize / (cores * 8)).clamp(1, 4096);
            return [chunk, 1, 1];
        }
        if self.is_native() {
            // Hand-written CUDA/HIP/offload kernels ship with tuned
            // launch bounds — they always use the app's tuned shape.
            return clamp_shape(
                kernel
                    .nd_shape
                    .unwrap_or_else(|| self.flat_heuristic(domain)),
                domain,
            );
        }
        match variant {
            SyclVariant::NdRange(default_shape) => {
                clamp_shape(kernel.nd_shape.unwrap_or(default_shape), domain)
            }
            SyclVariant::Flat => clamp_shape(self.flat_heuristic(domain), domain),
        }
    }

    /// The runtime's automatic work-group choice for a flat
    /// `parallel_for(range)` on GPUs.
    fn flat_heuristic(self, domain: [usize; 3]) -> [usize; 3] {
        let dims = domain.iter().filter(|&&d| d > 1).count().max(1);
        match self {
            Toolchain::Dpcpp => {
                // DPC++/Level-Zero picks shapes from range divisibility.
                // For 2-D ranges whose slow dimension divides 512 it
                // parallelises *that* dimension — uncoalesced in x. This
                // is the CloverLeaf-2D-flat pathology on every GPU.
                if dims == 2 && domain[1].is_multiple_of(512) {
                    [1, 512, 1]
                } else {
                    [256, 1, 1]
                }
            }
            Toolchain::OpenSycl => {
                // OpenSYCL uses a fixed small linear group for 3-D
                // ranges — ~half the occupancy needed (§4.1: "an almost
                // 50% slowdown" on CloverLeaf 3D).
                if dims == 3 {
                    [32, 1, 1]
                } else {
                    [256, 1, 1]
                }
            }
            // Native models hand-pick sane shapes.
            _ => {
                if dims >= 2 {
                    [64, 4, 1]
                } else {
                    [256, 1, 1]
                }
            }
        }
    }

    /// Fraction of SIMD/FLOP peak the generated code reaches on `platform`
    /// for a kernel with the given traits.
    pub fn vector_efficiency(self, platform: &Platform, kernel: &Kernel) -> f64 {
        let ChipKind::Cpu { simd_f64_lanes, .. } = platform.chip else {
            return 1.0; // SIMT GPUs don't auto-vectorise.
        };
        // f32 kernels fit twice the lanes, so scalar code loses more.
        let lanes = match kernel.footprint.precision {
            machine_model::Precision::F32 => 2 * simd_f64_lanes,
            machine_model::Precision::F64 => simd_f64_lanes,
        };
        let scalar = 1.0 / lanes as f64;
        let t = kernel.traits;
        let vectorisable = t.stride_one_inner && !t.indirect_writes;
        // §4.2: OpenSBLI SN "failed to vectorize across all variants" on
        // the Altra — a NEON limitation, not a toolchain one.
        if t.hard_on_neon && platform.id == PlatformId::Altra {
            return scalar;
        }
        match self {
            Toolchain::Mpi => {
                // §4.3: the owner-compute MPI variant has no intra-rank
                // races, so OP2's generated code vectorises even the
                // indirect kernels ("auto-vectorizing MPI") — unlike the
                // OpenMP-based variants.
                if t.stride_one_inner {
                    1.0
                } else {
                    scalar
                }
            }
            Toolchain::MpiOpenMp | Toolchain::OpenMp | Toolchain::OmpOffload => {
                if vectorisable {
                    1.0
                } else {
                    scalar
                }
            }
            Toolchain::Dpcpp => {
                // The OpenCL CPU compiler vectorises aggressively — the
                // paper measures DPC++ ~10 % faster than MPI/OpenMP on the
                // compute-heavy RTM/Acoustic thanks to "better
                // vectorization efficiency"; it even vectorises racy
                // hierarchical loops. But it is "not optimized" for
                // Genoa-X (§4.2).
                let quality = match platform.id {
                    PlatformId::Xeon8360Y => 1.1,
                    PlatformId::GenoaX => 0.85,
                    _ => 1.0,
                };
                if vectorisable || t.indirect_writes {
                    quality
                } else {
                    scalar
                }
            }
            Toolchain::OpenSycl => {
                // LLVM libomp pipeline: fine on simple x86 kernels, gives
                // up on complex bodies on aarch64 (§4.2: Acoustic
                // "auto-vectorization did not work for SYCL" on Altra).
                let gives_up_on_neon = t.complex_body && platform.id == PlatformId::Altra;
                if !vectorisable || gives_up_on_neon {
                    scalar
                } else {
                    0.95
                }
            }
            Toolchain::NativeCuda | Toolchain::NativeHip => 1.0,
        }
    }

    /// Reduction strategy available on a platform.
    ///
    /// §4.2: "we had to use user-defined binary tree reductions as SYCL
    /// 2020's built-in reductions are not yet supported in OpenSYCL for
    /// this target, and had compilation issues with DPC++" — reductions
    /// then cost 6-7× the OpenMP equivalents.
    pub fn reduction_strategy(self, platform: PlatformId) -> ReductionStrategy {
        match self {
            Toolchain::Dpcpp | Toolchain::OpenSycl => {
                if platform.is_gpu() {
                    ReductionStrategy::Native
                } else {
                    ReductionStrategy::UserBinaryTree
                }
            }
            _ => ReductionStrategy::Native,
        }
    }

    /// Compiler-stack maturity on a platform: the multiplier behind the
    /// small but consistent nd_range-vs-native gaps the paper averages
    /// (§4.1: DPC++ −1.2 % vs CUDA, OpenSYCL −5.3 %; DPC++ −15.9 % vs
    /// HIP; OMP-offload ~30 % behind SYCL on the Max 1100).
    pub fn codegen_efficiency(self, platform: PlatformId, kernel: &Kernel) -> f64 {
        use PlatformId::*;
        // §5: "SYCL implementations outperform native ones in a handful
        // of notable cases - on GPUs (NVIDIA in particular) ... mainly
        // due to the difference in the compiler stack, with LLVM
        // applying more powerful optimizations". The gain shows on long,
        // complex kernel bodies (MG-CFD flux, Acoustic).
        if platform == A100 && self.is_sycl() && kernel.traits.complex_body {
            return match self {
                Toolchain::OpenSycl => 1.10, // §4.3: atomics beat CUDA's
                _ => 1.06,                   // §4.1: Acoustic +10 % over CUDA
            };
        }
        match (self, platform) {
            // SYCL GPU plugins: near-native through PTX on NVIDIA,
            // less tuned through ROCm, native-grade on Level Zero.
            (Toolchain::Dpcpp, A100) => 0.99,
            (Toolchain::OpenSycl, A100) => 0.96,
            (Toolchain::Dpcpp, Mi250x) => 0.88,
            (Toolchain::OpenSycl, Mi250x) => 0.95,
            (Toolchain::Dpcpp | Toolchain::OpenSycl, Max1100) => 1.0,
            // icpx OpenMP offload on the Max is immature (§4.1: SYCL
            // nd_range ~30 % faster); Cray's on the MI250X is solid.
            (Toolchain::OmpOffload, Max1100) => 0.78,
            (Toolchain::OmpOffload, Mi250x) => 0.97,
            // DPC++ through OpenCL is "not optimized" for Genoa-X (§4.2).
            (Toolchain::Dpcpp, GenoaX) => 0.85,
            // OpenSYCL's omp.accelerated CPU path adds work-item loop
            // and barrier overheads that keep it behind the native
            // OpenMP code it compiles into (§4.2/§4.4: CPU SYCL
            // efficiency trails native by 10-20 points).
            (Toolchain::OpenSycl, Xeon8360Y | GenoaX | Altra) => 0.72,
            _ => 1.0,
        }
    }

    /// Assemble the complete execution profile for one launch.
    pub fn exec_profile(
        self,
        platform: &Platform,
        variant: SyclVariant,
        kernel: &Kernel,
    ) -> ExecProfile {
        ExecProfile {
            backend: self.backend(platform.id),
            workgroup: self.workgroup(platform, variant, kernel),
            vector_efficiency: self.vector_efficiency(platform, kernel),
            reduction: if kernel.footprint.reductions > 0 {
                self.reduction_strategy(platform.id)
            } else {
                ReductionStrategy::None
            },
            codegen_efficiency: self.codegen_efficiency(platform.id, kernel),
            ranks: self.ranks(platform),
        }
    }
}

/// SYCL kernel formulation: `parallel_for(range)` vs
/// `parallel_for(nd_range)` with an explicit work-group shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyclVariant {
    /// Runtime picks the work-group shape per kernel.
    Flat,
    /// Programmer-specified shape (the app-wide tuned default; individual
    /// kernels may override via [`Kernel::with_nd_shape`]).
    NdRange([usize; 3]),
}

impl SyclVariant {
    /// Label used in figures ("flat" / "ndrange").
    pub fn label(self) -> &'static str {
        match self {
            SyclVariant::Flat => "flat",
            SyclVariant::NdRange(_) => "ndrange",
        }
    }
}

/// Race-resolution scheme for unstructured (OP2) loops — Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Device-wide atomics.
    Atomics,
    /// Global edge colouring: no two same-colour edges share a vertex.
    GlobalColor,
    /// Hierarchical: blocks coloured against each other, edges coloured
    /// within blocks.
    HierColor,
}

impl Scheme {
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Atomics => "atomics",
            Scheme::GlobalColor => "global",
            Scheme::HierColor => "hierarchical",
        }
    }

    pub fn all() -> [Scheme; 3] {
        [Scheme::Atomics, Scheme::GlobalColor, Scheme::HierColor]
    }

    /// Parse a label as produced by [`Scheme::label`].
    pub fn parse(s: &str) -> Option<Scheme> {
        Scheme::all().into_iter().find(|k| k.label() == s)
    }
}

/// Clamp a work-group shape to the iteration domain.
fn clamp_shape(shape: [usize; 3], domain: [usize; 3]) -> [usize; 3] {
    [
        shape[0].clamp(1, domain[0].max(1)),
        shape[1].clamp(1, domain[1].max(1)),
        shape[2].clamp(1, domain[2].max(1)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine_model::{platform, AccessProfile, KernelFootprint, Precision, StencilProfile};

    #[test]
    fn labels_round_trip_through_parse() {
        use Toolchain::*;
        for tc in [
            NativeCuda, NativeHip, OmpOffload, Mpi, MpiOpenMp, OpenMp, Dpcpp, OpenSycl,
        ] {
            assert_eq!(Toolchain::parse(tc.label()), Some(tc));
        }
        assert_eq!(Toolchain::parse("C++"), None);
        for s in Scheme::all() {
            assert_eq!(Scheme::parse(s.label()), Some(s));
        }
        assert_eq!(Scheme::parse("colour"), None);
    }

    fn stencil_kernel(domain: [usize; 3]) -> Kernel {
        let pts: usize = domain.iter().map(|&d| d.max(1)).product();
        Kernel::new(KernelFootprint {
            name: "k".into(),
            items: pts as u64,
            effective_bytes: pts as f64 * 24.0,
            flops: pts as f64 * 10.0,
            transcendentals: 0.0,
            precision: Precision::F64,
            access: AccessProfile::Stencil(StencilProfile {
                domain,
                radius: [1, 1, if domain[2] > 1 { 1 } else { 0 }],
                dats_read: 2,
                dats_written: 1,
            }),
            atomics: None,
            reductions: 0,
        })
    }

    #[test]
    fn support_matrix_matches_the_paper() {
        use PlatformId::*;
        assert!(!Toolchain::Dpcpp.supports(Altra), "oneAPI is x86-only");
        assert!(Toolchain::OpenSycl.supports(Altra));
        assert!(Toolchain::NativeCuda.supports(A100));
        assert!(!Toolchain::NativeCuda.supports(Mi250x));
        assert!(Toolchain::OmpOffload.supports(Max1100));
        assert!(
            !Toolchain::OmpOffload.supports(A100),
            "LLVM offload to NVIDIA had runtime errors"
        );
        assert!(!Toolchain::Mpi.supports(A100));
        assert!(!Toolchain::MpiOpenMp.supports(Altra), "single NUMA node");
    }

    #[test]
    fn dpcpp_cpu_path_is_opencl_and_opensycl_is_openmp() {
        assert_eq!(
            Toolchain::Dpcpp.backend(PlatformId::Xeon8360Y),
            BackendKind::OpenClCpu
        );
        assert_eq!(
            Toolchain::OpenSycl.backend(PlatformId::Xeon8360Y),
            BackendKind::OmpHost
        );
        assert_eq!(
            Toolchain::Dpcpp.backend(PlatformId::A100),
            BackendKind::SyclGpu
        );
    }

    #[test]
    fn dpcpp_flat_pathology_fires_on_cloverleaf2d_shapes() {
        // 7680 divides 512 ⇒ the uncoalesced shape.
        let k2d = stencil_kernel([7680, 7680, 1]);
        let a100 = platform::a100();
        let wg = Toolchain::Dpcpp.workgroup(&a100, SyclVariant::Flat, &k2d);
        assert_eq!(wg, [1, 512, 1]);
        // 408 does not ⇒ sane shape.
        let k3d = stencil_kernel([408, 408, 408]);
        let wg = Toolchain::Dpcpp.workgroup(&a100, SyclVariant::Flat, &k3d);
        assert_eq!(wg, [256, 1, 1]);
    }

    #[test]
    fn opensycl_flat_picks_small_groups_in_3d() {
        let a100 = platform::a100();
        let k3d = stencil_kernel([408, 408, 408]);
        let wg = Toolchain::OpenSycl.workgroup(&a100, SyclVariant::Flat, &k3d);
        assert_eq!(wg, [32, 1, 1]);
        let k2d = stencil_kernel([7680, 7680, 1]);
        let wg = Toolchain::OpenSycl.workgroup(&a100, SyclVariant::Flat, &k2d);
        assert_eq!(wg, [256, 1, 1]);
    }

    #[test]
    fn nd_range_uses_tuned_shape_and_clamps_to_domain() {
        let a100 = platform::a100();
        let k = stencil_kernel([100, 8, 1]).with_nd_shape([256, 16, 1]);
        let wg = Toolchain::Dpcpp.workgroup(&a100, SyclVariant::NdRange([64, 4, 1]), &k);
        assert_eq!(wg, [100, 8, 1]);
    }

    #[test]
    fn sycl_reductions_fall_back_to_user_trees_on_cpus_only() {
        assert_eq!(
            Toolchain::Dpcpp.reduction_strategy(PlatformId::Xeon8360Y),
            ReductionStrategy::UserBinaryTree
        );
        assert_eq!(
            Toolchain::OpenSycl.reduction_strategy(PlatformId::GenoaX),
            ReductionStrategy::UserBinaryTree
        );
        assert_eq!(
            Toolchain::Dpcpp.reduction_strategy(PlatformId::A100),
            ReductionStrategy::Native
        );
        assert_eq!(
            Toolchain::MpiOpenMp.reduction_strategy(PlatformId::Xeon8360Y),
            ReductionStrategy::Native
        );
    }

    #[test]
    fn vectorisation_model_matches_paper_observations() {
        let xeon = platform::xeon8360y();
        let altra = platform::altra();
        let simple = stencil_kernel([320, 320, 320]);
        // DPC++ on Xeon beats native vectorisation by ~10 %.
        let dpcpp = Toolchain::Dpcpp.vector_efficiency(&xeon, &simple);
        let native = Toolchain::MpiOpenMp.vector_efficiency(&xeon, &simple);
        assert!(dpcpp > native);
        // OpenSYCL on Altra gives up on complex bodies (Acoustic).
        let mut complex = simple.clone();
        complex.traits.complex_body = true;
        let os_altra = Toolchain::OpenSycl.vector_efficiency(&altra, &complex);
        let omp_altra = Toolchain::OpenMp.vector_efficiency(&altra, &complex);
        assert!(os_altra < omp_altra);
        // SN-style kernels fail for everyone on NEON.
        let mut sn = simple.clone();
        sn.traits.hard_on_neon = true;
        assert!(Toolchain::OpenMp.vector_efficiency(&altra, &sn) < 1.0);
        assert!((Toolchain::OpenMp.vector_efficiency(&xeon, &sn) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mpi_ranks_follow_platform_topology() {
        let xeon = platform::xeon8360y();
        let genoa = platform::genoax();
        assert_eq!(Toolchain::Mpi.ranks(&xeon), 72);
        assert_eq!(Toolchain::MpiOpenMp.ranks(&xeon), 2);
        assert_eq!(Toolchain::MpiOpenMp.ranks(&genoa), 4);
        assert_eq!(Toolchain::OpenSycl.ranks(&xeon), 1);
        assert_eq!(Toolchain::NativeCuda.ranks(&platform::a100()), 1);
    }

    #[test]
    fn cpu_workgroups_are_thread_chunks() {
        let xeon = platform::xeon8360y();
        let k = stencil_kernel([320, 320, 320]);
        let wg = Toolchain::OpenSycl.workgroup(&xeon, SyclVariant::Flat, &k);
        assert!(wg[0] >= 1 && wg[1] == 1 && wg[2] == 1);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Toolchain::Dpcpp.label(), "DPC++");
        assert_eq!(SyclVariant::Flat.label(), "flat");
        assert_eq!(SyclVariant::NdRange([1, 1, 1]).label(), "ndrange");
        assert_eq!(Scheme::HierColor.label(), "hierarchical");
    }
}
