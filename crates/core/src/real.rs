//! Floating-point genericity: the applications run in the paper's
//! precisions (CloverLeaf/OpenSBLI/MG-CFD in f64, RTM/Acoustic in f32).

use machine_model::Precision;

/// A real scalar type usable in kernels.
pub trait Real:
    Copy
    + Send
    + Sync
    + PartialOrd
    + std::fmt::Debug
    + std::fmt::Display
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::Neg<Output = Self>
    + std::ops::AddAssign
    + 'static
{
    /// The machine-model precision tag.
    const PRECISION: Precision;
    /// Bytes per element.
    const BYTES: f64;

    fn zero() -> Self;
    fn one() -> Self;
    fn from_f64(x: f64) -> Self;
    fn to_f64(self) -> f64;
    fn abs(self) -> Self;
    fn sqrt(self) -> Self;
    fn min2(self, other: Self) -> Self;
    fn max2(self, other: Self) -> Self;

    /// Atomically `*ptr += val` via a CAS loop on the bit pattern — the
    /// "safe atomics" path every CPU (and OpenSYCL on the MI250X) uses.
    ///
    /// # Safety
    /// `ptr` must be valid, properly aligned, and only accessed atomically
    /// (or not at all) by other threads for the duration of the call.
    unsafe fn atomic_add(ptr: *mut Self, val: Self);
}

impl Real for f32 {
    const PRECISION: Precision = Precision::F32;
    const BYTES: f64 = 4.0;

    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn abs(self) -> Self {
        f32::abs(self)
    }
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    fn min2(self, other: Self) -> Self {
        f32::min(self, other)
    }
    fn max2(self, other: Self) -> Self {
        f32::max(self, other)
    }

    unsafe fn atomic_add(ptr: *mut Self, val: Self) {
        use std::sync::atomic::{AtomicU32, Ordering};
        // SAFETY: caller guarantees validity/alignment/atomic access.
        let atom = unsafe { AtomicU32::from_ptr(ptr.cast::<u32>()) };
        let mut cur = atom.load(Ordering::Relaxed);
        loop {
            let next = (f32::from_bits(cur) + val).to_bits();
            match atom.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(observed) => cur = observed,
            }
        }
    }
}

impl Real for f64 {
    const PRECISION: Precision = Precision::F64;
    const BYTES: f64 = 8.0;

    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn from_f64(x: f64) -> Self {
        x
    }
    fn to_f64(self) -> f64 {
        self
    }
    fn abs(self) -> Self {
        f64::abs(self)
    }
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    fn min2(self, other: Self) -> Self {
        f64::min(self, other)
    }
    fn max2(self, other: Self) -> Self {
        f64::max(self, other)
    }

    unsafe fn atomic_add(ptr: *mut Self, val: Self) {
        use std::sync::atomic::{AtomicU64, Ordering};
        // SAFETY: caller guarantees validity/alignment/atomic access.
        let atom = unsafe { AtomicU64::from_ptr(ptr.cast::<u64>()) };
        let mut cur = atom.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + val).to_bits();
            match atom.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(observed) => cur = observed,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Real>() {
        assert_eq!(T::zero().to_f64(), 0.0);
        assert_eq!(T::one().to_f64(), 1.0);
        assert_eq!(T::from_f64(2.0).to_f64(), 2.0);
        assert_eq!(T::from_f64(-3.0).abs().to_f64(), 3.0);
        assert_eq!(T::from_f64(9.0).sqrt().to_f64(), 3.0);
        assert_eq!(T::from_f64(1.0).min2(T::from_f64(2.0)).to_f64(), 1.0);
        assert_eq!(T::from_f64(1.0).max2(T::from_f64(2.0)).to_f64(), 2.0);
    }

    #[test]
    fn atomic_adds_accumulate_under_contention() {
        let mut target = 0.0f64;
        let p = std::ptr::addr_of_mut!(target) as usize;
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(move || {
                    for _ in 0..1000 {
                        // SAFETY: all threads use only atomic_add on this location.
                        unsafe { f64::atomic_add(p as *mut f64, 1.0) };
                    }
                });
            }
        });
        assert_eq!(target, 4000.0);

        let mut t32 = 0.0f32;
        let p32 = std::ptr::addr_of_mut!(t32) as usize;
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(move || {
                    for _ in 0..100 {
                        // SAFETY: as above.
                        unsafe { f32::atomic_add(p32 as *mut f32, 0.5) };
                    }
                });
            }
        });
        assert_eq!(t32, 200.0);
    }

    #[test]
    fn both_precisions_behave() {
        roundtrip::<f32>();
        roundtrip::<f64>();
        assert_eq!(f32::PRECISION, Precision::F32);
        assert_eq!(f64::PRECISION, Precision::F64);
        assert_eq!(f32::BYTES, 4.0);
        assert_eq!(f64::BYTES, 8.0);
    }
}
