//! `sycl_sim::service` — the sharded many-session service layer.
//!
//! A [`Service`] runs N concurrent [`Session`] shards over the one
//! process-wide parkit pool. Admission control bounds the launches in
//! flight across all shards with a **lock-free counting semaphore**: an
//! atomic token counter serves the uncontended fast path in a single
//! CAS (no mutex, no syscall — sub-microsecond), and contended
//! submissions enqueue a per-waiter state machine on a bounded MPMC
//! slot ring ([`parkit::MpmcQueue`]) and spin-then-park on a
//! [`parkit::Parker`] until a releasing permit hands its slot over
//! directly. Queue depth past [`ServiceConfig::high_water`] triggers
//! the configured [`ShedPolicy`].
//!
//! Batching: [`Service::submit_batch`] coalesces N client launches into
//! one [`LaunchGraph`] replay — one admission slot, one pricing-cache
//! lock, one ledger lock — and [`Service::replay_batch`] composes N
//! recorded graphs the same way via [`crate::graph::replay_all`]. Both
//! leave the shard ledger bit-identical to serial submission
//! (property-tested in `tests/service_batch.rs`).
//!
//! Telemetry: queue depth is exported as a coherent
//! `service.queue_depth` gauge (one atomic, not a racy two-field read),
//! admission wait as a `service.admission_wait_us` histogram, coalesced
//! request counts as `service.batch_size`, and shed submissions as a
//! `service.shed_total` counter. Each admitted submission records a
//! `Shard` span named after its shard.
//!
//! The memory-ordering argument for the admission protocol is written
//! up in DESIGN.md §13.

use crate::error::Failure;
use crate::graph::{replay_all, GraphBuilder, LaunchGraph};
use crate::kernel::Kernel;
use crate::session::{Session, SessionConfig};
use parkit::{MpmcQueue, Parker};
use std::sync::atomic::{fence, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// What to do with new submissions once the admission queue is deeper
/// than [`ServiceConfig::high_water`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Queue regardless of depth (the default): nothing is ever shed,
    /// submissions wait their turn.
    #[default]
    Block,
    /// Turn the *new* submission away with [`Rejected`].
    Reject,
    /// Shed the *oldest* queued submission (it gets [`Rejected`]) and
    /// queue the new one — freshest-work-wins under overload.
    ShedOldest,
}

/// A submission turned away by the shedding policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected {
    /// Submissions waiting in admission when the policy fired.
    pub depth: usize,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "submission shed at admission (queue depth {})",
            self.depth
        )
    }
}

impl std::error::Error for Rejected {}

/// Service-wide limits.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Concurrent sessions to shard the service into.
    pub shards: usize,
    /// Bound on launches/replays in flight across all shards; further
    /// submissions queue in admission until a slot frees.
    pub max_in_flight: usize,
    /// Queue depth beyond which [`ShedPolicy`] applies.
    pub high_water: usize,
    /// What happens to submissions past the high-water mark.
    pub policy: ShedPolicy,
}

impl ServiceConfig {
    /// `shards` sessions admitting `max_in_flight` concurrent launches,
    /// with the default [`ShedPolicy::Block`] (nothing is shed).
    pub fn new(shards: usize, max_in_flight: usize) -> ServiceConfig {
        let max_in_flight = max_in_flight.max(1);
        ServiceConfig {
            shards: shards.max(1),
            max_in_flight,
            high_water: 64 * max_in_flight,
            policy: ShedPolicy::Block,
        }
    }

    /// Set the load-shedding policy and its high-water queue depth.
    pub fn shedding(mut self, policy: ShedPolicy, high_water: usize) -> ServiceConfig {
        self.policy = policy;
        self.high_water = high_water;
        self
    }
}

/// Waiter states. WAITING is the only state that transitions; every
/// exit arc is a single CAS, so exactly one party resolves each waiter.
const WAITING: u32 = 0;
/// A releasing permit handed its slot to this waiter.
const ADMITTED: u32 = 1;
/// The waiter claimed a deposited token itself; its queue entry is
/// stale and releasers skip it.
const CANCELLED: u32 = 2;
/// `ShedOldest` turned this waiter away.
const SHED: u32 = 3;

/// One queued submission: resolved by exactly one CAS on `state`, then
/// woken through its parker.
struct Waiter {
    state: AtomicU32,
    parker: Parker,
}

impl Waiter {
    fn new() -> Waiter {
        Waiter {
            state: AtomicU32::new(WAITING),
            parker: Parker::new(),
        }
    }
}

/// Lock-free counting semaphore with direct hand-off (see DESIGN.md §13).
struct Admission {
    /// Free slots. The uncontended path is one CAS here.
    tokens: AtomicUsize,
    /// Queued waiters, oldest first. Entries whose state is no longer
    /// WAITING are stale and skipped by releasers.
    waiters: MpmcQueue<Arc<Waiter>>,
    /// Coherent queue depth: incremented before a waiter enqueues,
    /// decremented by the waiter as it leaves (admitted, shed or
    /// self-cancelled), so a quiescent service always reads 0.
    depth: AtomicUsize,
    /// Submissions shed so far (exact, independent of telemetry).
    shed: AtomicU64,
    high_water: usize,
    policy: ShedPolicy,
}

impl Admission {
    fn new(cfg: &ServiceConfig) -> Admission {
        // Ring sized past the high-water mark so shedding policies see
        // a full picture; Block with a deeper queue than the ring falls
        // back to yielding pushes (correct, just slower).
        let ring = cfg.high_water.saturating_mul(2).clamp(64, 4096);
        Admission {
            tokens: AtomicUsize::new(cfg.max_in_flight),
            waiters: MpmcQueue::new(ring),
            depth: AtomicUsize::new(0),
            shed: AtomicU64::new(0),
            high_water: cfg.high_water,
            policy: cfg.policy,
        }
    }

    /// Claim a free slot if one is available. AcqRel on success so the
    /// releasing permit's writes are visible to the admitted launch.
    fn try_take_token(&self) -> bool {
        let mut t = self.tokens.load(Ordering::Relaxed);
        while t > 0 {
            match self
                .tokens
                .compare_exchange_weak(t, t - 1, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => return true,
                Err(now) => t = now,
            }
        }
        false
    }

    /// Admit one submission: single-CAS fast path, queue-and-park slow
    /// path. `Err` only under `Reject`/`ShedOldest` past high water.
    fn enter(&self) -> Result<Permit<'_>, Rejected> {
        if self.try_take_token() {
            if telemetry::enabled() {
                metrics::registry().record("service.admission_wait_us", 0.0);
            }
            return Ok(Permit { admission: self });
        }
        self.enter_slow()
    }

    #[cold]
    fn enter_slow(&self) -> Result<Permit<'_>, Rejected> {
        let t0 = telemetry::enabled().then(Instant::now);
        let depth = self.depth.fetch_add(1, Ordering::AcqRel) + 1;
        metrics::registry().gauge("service.queue_depth", "waiting", depth as f64);
        if depth > self.high_water {
            match self.policy {
                ShedPolicy::Block => {}
                ShedPolicy::Reject => {
                    self.depth_dec();
                    self.note_shed();
                    return Err(Rejected { depth });
                }
                ShedPolicy::ShedOldest => self.shed_oldest(),
            }
        }

        let waiter = Arc::new(Waiter::new());
        let mut entry = Arc::clone(&waiter);
        // Publish ourselves to releasers. A full ring (Block with a
        // high-water mark far beyond it) degrades to polling admission.
        while let Err(back) = self.waiters.try_push(entry) {
            entry = back;
            if self.try_take_token() {
                self.depth_dec();
                self.note_wait(t0);
                return Ok(Permit { admission: self });
            }
            std::thread::yield_now();
        }

        // Closing the lost-wakeup window (DESIGN.md §13): a release
        // that found the queue empty before our push deposited a token
        // instead. The SeqCst fence pairs with the releaser's fence so
        // at least one side observes the other — we see the token here,
        // or the releaser sees our entry and hands off directly.
        fence(Ordering::SeqCst);
        if self.try_take_token() {
            match self.waiter_resolved(&waiter, CANCELLED) {
                // Cancelled our own entry; the token is our permit.
                CANCELLED => {
                    self.depth_dec();
                    self.note_wait(t0);
                    return Ok(Permit { admission: self });
                }
                // A releaser admitted us first: we hold a surplus
                // token on top of the hand-off — put it back.
                ADMITTED => {
                    self.release();
                    self.depth_dec();
                    self.note_wait(t0);
                    return Ok(Permit { admission: self });
                }
                // Shed and self-admitted at once: honour the shed
                // (the policy already counted us) and return the token.
                _ => {
                    self.release();
                    self.depth_dec();
                    return Err(Rejected { depth });
                }
            }
        }

        // Park until a releaser or the shedding policy resolves us.
        loop {
            waiter.parker.park();
            match waiter.state.load(Ordering::Acquire) {
                ADMITTED => {
                    self.depth_dec();
                    self.note_wait(t0);
                    return Ok(Permit { admission: self });
                }
                SHED => {
                    self.depth_dec();
                    return Err(Rejected { depth });
                }
                // Stale token from a raced earlier unpark: park again.
                _ => {}
            }
        }
    }

    /// CAS the waiter out of WAITING into `to`; returns the state that
    /// actually resolved it (someone else's if the CAS lost).
    fn waiter_resolved(&self, w: &Waiter, to: u32) -> u32 {
        match w
            .state
            .compare_exchange(WAITING, to, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => to,
            Err(actual) => actual,
        }
    }

    /// Release one slot: hand it straight to the oldest live waiter
    /// (skipping stale entries), else deposit a token — then re-check
    /// the queue across a SeqCst fence so a waiter that enqueued
    /// concurrently is never stranded behind the deposit.
    fn release(&self) {
        loop {
            while let Some(w) = self.waiters.try_pop() {
                if self.waiter_resolved(&w, ADMITTED) == ADMITTED {
                    w.parker.unpark();
                    return;
                }
            }
            self.tokens.fetch_add(1, Ordering::AcqRel);
            fence(Ordering::SeqCst);
            if self.waiters.is_empty() || !self.try_take_token() {
                // Queue stayed empty (the fence pairing guarantees any
                // concurrent enqueuer sees our token), or another
                // claimant took the token and is admitted — done.
                return;
            }
            // Reclaimed the token to serve the late enqueuer; loop.
        }
    }

    /// Shed the oldest still-waiting submission, if any.
    fn shed_oldest(&self) {
        while let Some(w) = self.waiters.try_pop() {
            if self.waiter_resolved(&w, SHED) == SHED {
                self.note_shed();
                w.parker.unpark();
                return;
            }
        }
    }

    fn depth_dec(&self) {
        let now = self.depth.fetch_sub(1, Ordering::AcqRel) - 1;
        metrics::registry().gauge("service.queue_depth", "waiting", now as f64);
    }

    fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
        metrics::registry().add("service.shed_total", "submissions", 1);
    }

    fn note_wait(&self, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            metrics::registry().record(
                "service.admission_wait_us",
                t0.elapsed().as_secs_f64() * 1e6,
            );
        }
    }

    fn depth(&self) -> usize {
        self.depth.load(Ordering::Acquire)
    }
}

/// An admitted slot; releasing it hands the slot to the oldest queued
/// submission (or banks a token when nobody waits).
struct Permit<'a> {
    admission: &'a Admission,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.admission.release();
    }
}

/// A batch of launches to coalesce into one submission: one admission
/// slot, one pricing-cache lock, one ledger lock. Bodies follow graph
/// conventions (called with `session.executes()`).
type BatchOp<'a> = (Kernel, Box<dyn Fn(bool) + Sync + 'a>);

pub struct Batch<'a> {
    ops: Vec<BatchOp<'a>>,
}

impl<'a> Batch<'a> {
    /// An empty batch.
    pub fn new() -> Batch<'a> {
        Batch { ops: Vec::new() }
    }

    /// Append one launch.
    pub fn launch(&mut self, kernel: &Kernel, body: impl Fn(bool) + Sync + 'a) {
        self.ops.push((kernel.clone(), Box::new(body)));
    }

    /// Launches queued in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing has been queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl Default for Batch<'_> {
    fn default() -> Self {
        Batch::new()
    }
}

/// One shard: a session plus its interned span name.
pub struct ServiceShard {
    session: Session,
    span_name: Arc<str>,
}

impl ServiceShard {
    /// The shard's session (ledger queries, resets, observers).
    pub fn session(&self) -> &Session {
        &self.session
    }
}

/// N concurrent sessions over one parkit pool, behind lock-free
/// admission control.
pub struct Service {
    shards: Vec<ServiceShard>,
    admission: Admission,
    next: AtomicUsize,
}

impl Service {
    /// Build the shards from per-shard configs. `cfg(i)` names shard
    /// `i`'s session config; any quirk failure aborts the whole build.
    pub fn new(
        limits: ServiceConfig,
        cfg: impl Fn(usize) -> SessionConfig,
    ) -> Result<Service, Failure> {
        let mut shards = Vec::with_capacity(limits.shards);
        for i in 0..limits.shards {
            shards.push(ServiceShard {
                session: Session::create(cfg(i))?,
                span_name: Arc::from(format!("shard{i}").as_str()),
            });
        }
        Ok(Service {
            shards,
            admission: Admission::new(&limits),
            next: AtomicUsize::new(0),
        })
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// A shard's session by index.
    pub fn shard(&self, i: usize) -> &Session {
        &self.shards[i].session
    }

    /// Submissions currently queued in admission — one atomic read, so
    /// the snapshot is coherent (a drained service always reads 0).
    pub fn queue_depth(&self) -> usize {
        self.admission.depth()
    }

    /// Submissions shed by the policy since the service was built.
    pub fn shed_count(&self) -> u64 {
        self.admission.shed.load(Ordering::Relaxed)
    }

    /// Launch on shard `i`; queues in admission while the service is at
    /// its in-flight limit. `Err` only under a shedding policy.
    pub fn submit<R>(
        &self,
        i: usize,
        kernel: &Kernel,
        body: impl FnOnce() -> R,
    ) -> Result<R, Rejected> {
        let shard = &self.shards[i];
        let _permit = self.admission.enter()?;
        let span = telemetry::SpanTimer::start();
        let r = shard.session.launch(kernel, body);
        if let Some(t) = span {
            t.finish(
                telemetry::SpanKind::Shard,
                Arc::clone(&shard.span_name),
                1,
                kernel.footprint.effective_bytes,
            );
        }
        Ok(r)
    }

    /// Launch on the next shard round-robin; returns the shard index
    /// alongside the body's result.
    pub fn submit_any<R>(
        &self,
        kernel: &Kernel,
        body: impl FnOnce() -> R,
    ) -> Result<(usize, R), Rejected> {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        self.submit(i, kernel, body).map(|r| (i, r))
    }

    /// Coalesce `batch` into a single graph replay on shard `i`: one
    /// admission slot, one pricing-cache lock, one ledger lock. The
    /// shard ledger is bit-identical to submitting the launches one by
    /// one, and `service.batch_size` records the coalesced count.
    pub fn submit_batch<'a>(&self, i: usize, batch: Batch<'a>) -> Result<(), Rejected> {
        if batch.is_empty() {
            return Ok(());
        }
        let shard = &self.shards[i];
        let _permit = self.admission.enter()?;
        metrics::registry().record("service.batch_size", batch.len() as f64);
        let span = telemetry::SpanTimer::start();
        let mut g: GraphBuilder<'a> = GraphBuilder::new();
        for (kernel, body) in batch.ops {
            g.launch(&kernel, body);
        }
        let g = g.finish();
        g.replay(&shard.session);
        if let Some(t) = span {
            t.finish(
                telemetry::SpanKind::Shard,
                Arc::clone(&shard.span_name),
                g.n_launches(),
                0.0,
            );
        }
        Ok(())
    }

    /// Replay a recorded graph on shard `i` under one admission slot.
    pub fn replay(&self, i: usize, graph: &LaunchGraph<'_>) -> Result<(), Rejected> {
        let shard = &self.shards[i];
        let _permit = self.admission.enter()?;
        let span = telemetry::SpanTimer::start();
        graph.replay(&shard.session);
        if let Some(t) = span {
            t.finish(
                telemetry::SpanKind::Shard,
                Arc::clone(&shard.span_name),
                graph.n_launches(),
                0.0,
            );
        }
        Ok(())
    }

    /// Replay several recorded graphs on shard `i` as one composed
    /// commit (see [`crate::graph::replay_all`]): one admission slot,
    /// one pricing pass, one ledger lock — bit-identical to replaying
    /// them serially in slice order.
    pub fn replay_batch(&self, i: usize, graphs: &[&LaunchGraph<'_>]) -> Result<(), Rejected> {
        if graphs.is_empty() {
            return Ok(());
        }
        let shard = &self.shards[i];
        let _permit = self.admission.enter()?;
        metrics::registry().record("service.batch_size", graphs.len() as f64);
        let span = telemetry::SpanTimer::start();
        replay_all(&shard.session, graphs);
        if let Some(t) = span {
            t.finish(
                telemetry::SpanKind::Shard,
                Arc::clone(&shard.span_name),
                graphs.iter().map(|g| g.n_launches()).sum(),
                0.0,
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toolchain::Toolchain;
    use machine_model::PlatformId;
    use std::sync::mpsc;

    fn service(shards: usize, max_in_flight: usize) -> Service {
        Service::new(ServiceConfig::new(shards, max_in_flight), |_| {
            SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda).app("svc")
        })
        .unwrap()
    }

    fn shedding_service(max_in_flight: usize, policy: ShedPolicy, high_water: usize) -> Service {
        Service::new(
            ServiceConfig::new(1, max_in_flight).shedding(policy, high_water),
            |_| SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda).app("svc"),
        )
        .unwrap()
    }

    #[test]
    fn shards_keep_independent_ledgers() {
        let svc = service(3, 4);
        let k = Kernel::streaming("x", 1 << 16, 1e6, 0.0);
        svc.submit(0, &k, || ()).unwrap();
        svc.submit(0, &k, || ()).unwrap();
        svc.submit(2, &k, || ()).unwrap();
        assert_eq!(svc.shard(0).records().len(), 2);
        assert_eq!(svc.shard(1).records().len(), 0);
        assert_eq!(svc.shard(2).records().len(), 1);
    }

    #[test]
    fn round_robin_spreads_submissions() {
        let svc = service(2, 4);
        let k = Kernel::streaming("x", 1 << 16, 1e6, 0.0);
        let (a, ()) = svc.submit_any(&k, || ()).unwrap();
        let (b, ()) = svc.submit_any(&k, || ()).unwrap();
        assert_ne!(a, b);
        assert_eq!(svc.shard(a).records().len(), 1);
        assert_eq!(svc.shard(b).records().len(), 1);
    }

    #[test]
    fn admission_bounds_in_flight_launches() {
        let svc = Arc::new(service(4, 2));
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let k = Kernel::streaming("x", 1 << 12, 1e4, 0.0);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let (svc, live, peak, k) = (
                    Arc::clone(&svc),
                    Arc::clone(&live),
                    Arc::clone(&peak),
                    k.clone(),
                );
                scope.spawn(move || {
                    for _ in 0..50 {
                        svc.submit(t, &k, || {
                            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                            peak.fetch_max(now, Ordering::SeqCst);
                            live.fetch_sub(1, Ordering::SeqCst);
                        })
                        .unwrap();
                    }
                });
            }
        });
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "admission limit exceeded: {}",
            peak.load(Ordering::SeqCst)
        );
        for t in 0..4 {
            assert_eq!(svc.shard(t).records().len(), 50);
        }
        assert_eq!(svc.queue_depth(), 0);
        assert_eq!(svc.shed_count(), 0, "Block never sheds");
    }

    /// Satellite: queue depth is a coherent snapshot — observably > 0
    /// while a submission is queued, and exactly 0 after the drain.
    #[test]
    fn queue_depth_rises_then_returns_to_zero_after_drain() {
        let svc = Arc::new(service(1, 1));
        let k = Kernel::streaming("x", 1 << 12, 1e4, 0.0);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        std::thread::scope(|scope| {
            let holder = {
                let (svc, k) = (Arc::clone(&svc), k.clone());
                scope.spawn(move || {
                    svc.submit(0, &k, move || {
                        gate_rx.recv().unwrap();
                    })
                    .unwrap();
                })
            };
            let queued = {
                let (svc, k) = (Arc::clone(&svc), k.clone());
                scope.spawn(move || {
                    svc.submit(0, &k, || ()).unwrap();
                })
            };
            // The second submission must show up in the depth gauge.
            while svc.queue_depth() == 0 && !queued.is_finished() {
                std::thread::yield_now();
            }
            gate_tx.send(()).unwrap();
            holder.join().unwrap();
            queued.join().unwrap();
        });
        assert_eq!(svc.queue_depth(), 0, "drained service reads depth 0");
        assert_eq!(svc.shard(0).records().len(), 2);
    }

    #[test]
    fn reject_policy_turns_new_submissions_away() {
        let svc = Arc::new(shedding_service(1, ShedPolicy::Reject, 0));
        let k = Kernel::streaming("x", 1 << 12, 1e4, 0.0);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        std::thread::scope(|scope| {
            let holder = {
                let (svc, k) = (Arc::clone(&svc), k.clone());
                scope.spawn(move || {
                    svc.submit(0, &k, move || {
                        gate_rx.recv().unwrap();
                    })
                    .unwrap();
                })
            };
            // Wait until the permit is actually held.
            while svc.shard(0).records().is_empty() {
                std::thread::yield_now();
            }
            let shed = svc.submit(0, &k, || ()).unwrap_err();
            assert!(shed.depth > 0);
            gate_tx.send(()).unwrap();
            holder.join().unwrap();
        });
        assert_eq!(svc.shed_count(), 1);
        assert_eq!(svc.queue_depth(), 0);
        assert_eq!(svc.shard(0).records().len(), 1, "shed launch never ran");
    }

    #[test]
    fn shed_oldest_prefers_fresh_work() {
        let svc = Arc::new(shedding_service(1, ShedPolicy::ShedOldest, 1));
        let k = Kernel::streaming("x", 1 << 12, 1e4, 0.0);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        std::thread::scope(|scope| {
            let holder = {
                let (svc, k) = (Arc::clone(&svc), k.clone());
                scope.spawn(move || {
                    svc.submit(0, &k, move || {
                        gate_rx.recv().unwrap();
                    })
                    .unwrap();
                })
            };
            while svc.shard(0).records().is_empty() {
                std::thread::yield_now();
            }
            let old = {
                let (svc, k) = (Arc::clone(&svc), k.clone());
                scope.spawn(move || svc.submit(0, &k, || ()))
            };
            while svc.queue_depth() == 0 {
                std::thread::yield_now();
            }
            // Give the old waiter time to finish publishing its entry.
            std::thread::sleep(std::time::Duration::from_millis(30));
            // Depth 2 > high_water 1: the *oldest* waiter is shed and
            // the fresh submission queues in its place.
            let fresh = {
                let (svc, k) = (Arc::clone(&svc), k.clone());
                scope.spawn(move || svc.submit(0, &k, || ()))
            };
            while svc.shed_count() == 0 {
                std::thread::yield_now();
            }
            gate_tx.send(()).unwrap();
            assert!(fresh.join().unwrap().is_ok(), "fresh submission survives");
            assert!(old.join().unwrap().is_err(), "oldest waiter was shed");
            holder.join().unwrap();
        });
        assert_eq!(svc.shed_count(), 1);
        assert_eq!(svc.queue_depth(), 0);
        assert_eq!(svc.shard(0).records().len(), 2);
    }

    #[test]
    fn graph_replays_go_through_admission() {
        let svc = service(2, 1);
        let k = Kernel::streaming("x", 1 << 16, 1e6, 0.0);
        let mut g = svc.shard(1).record();
        g.launch(&k, |_| {});
        g.launch(&k, |_| {});
        let g = g.finish();
        svc.replay(1, &g).unwrap();
        svc.replay(1, &g).unwrap();
        assert_eq!(svc.shard(1).records().len(), 4);
        assert_eq!(svc.shard(0).records().len(), 0);
    }

    #[test]
    fn submit_batch_matches_serial_submits_bit_for_bit() {
        let batched = service(1, 2);
        let serial = service(1, 2);
        let k1 = Kernel::streaming("triad", 1 << 20, 3e7, 2e6);
        let k2 = Kernel::streaming("copy", 1 << 18, 4e6, 0.0);
        let mut b = Batch::new();
        b.launch(&k1, |_| {});
        b.launch(&k2, |_| {});
        b.launch(&k1, |_| {});
        assert_eq!(b.len(), 3);
        batched.submit_batch(0, b).unwrap();
        serial.submit(0, &k1, || ()).unwrap();
        serial.submit(0, &k2, || ()).unwrap();
        serial.submit(0, &k1, || ()).unwrap();
        assert_eq!(
            batched.shard(0).ledger_digest(),
            serial.shard(0).ledger_digest()
        );
        // An empty batch admits nothing and records nothing.
        batched.submit_batch(0, Batch::new()).unwrap();
        assert_eq!(batched.shard(0).records().len(), 3);
    }

    #[test]
    fn replay_batch_matches_serial_replays_bit_for_bit() {
        let svc = service(1, 2);
        let serial = service(1, 2);
        let k = Kernel::streaming("x", 1 << 16, 1e6, 0.0);
        fn build<'s>(svc: &'s Service, k: &Kernel) -> (LaunchGraph<'s>, LaunchGraph<'s>) {
            let mut a = svc.shard(0).record();
            a.launch(k, |_| {});
            let mut b = svc.shard(0).record();
            b.launch(k, |_| {});
            b.launch(k, |_| {});
            (a.finish(), b.finish())
        }
        {
            let (a, b) = build(&svc, &k);
            svc.replay_batch(0, &[&a, &b]).unwrap();
            svc.replay_batch(0, &[]).unwrap();
        }
        {
            let (a, b) = build(&serial, &k);
            serial.replay(0, &a).unwrap();
            serial.replay(0, &b).unwrap();
        }
        assert_eq!(
            svc.shard(0).ledger_digest(),
            serial.shard(0).ledger_digest()
        );
        assert_eq!(svc.shard(0).records().len(), 3);
    }
}
