//! `sycl_sim::service` — the sharded many-session service layer.
//!
//! A [`Service`] runs N concurrent [`Session`] shards over the one
//! process-wide parkit pool. Admission control bounds the launches in
//! flight across all shards (a semaphore over `Mutex` + `Condvar`), so
//! a burst of clients queues instead of oversubscribing the pool; the
//! queue depth is exported as a `service.queue_depth` gauge and the
//! admission wait as a `service.admission_wait_us` histogram in
//! [`metrics::registry`]. Each admitted submission records a `Shard`
//! span named after its shard.
//!
//! Shards are plain sessions: each keeps its own ledger, pricing cache
//! and observer, so concurrent shards never corrupt each other's
//! ledgers (property-tested in `tests/service_shards.rs`).

use crate::error::Failure;
use crate::graph::LaunchGraph;
use crate::kernel::Kernel;
use crate::session::{Session, SessionConfig};
use parkit::sync::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Service-wide limits.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Concurrent sessions to shard the service into.
    pub shards: usize,
    /// Bound on launches/replays in flight across all shards; further
    /// submissions block in admission until a slot frees.
    pub max_in_flight: usize,
}

impl ServiceConfig {
    /// `shards` sessions admitting `max_in_flight` concurrent launches.
    pub fn new(shards: usize, max_in_flight: usize) -> ServiceConfig {
        ServiceConfig {
            shards: shards.max(1),
            max_in_flight: max_in_flight.max(1),
        }
    }
}

struct AdmitState {
    in_flight: usize,
    queued: usize,
}

/// Counting semaphore with a queue-depth gauge.
struct Admission {
    state: Mutex<AdmitState>,
    freed: Condvar,
    limit: usize,
}

impl Admission {
    fn new(limit: usize) -> Admission {
        Admission {
            state: Mutex::new(AdmitState {
                in_flight: 0,
                queued: 0,
            }),
            freed: Condvar::new(),
            limit,
        }
    }

    fn enter(&self) -> Permit<'_> {
        let t0 = telemetry::enabled().then(Instant::now);
        let mut st = self.state.lock();
        st.queued += 1;
        metrics::registry().gauge("service.queue_depth", "sessions", st.queued as f64);
        while st.in_flight >= self.limit {
            self.freed.wait(&mut st);
        }
        st.queued -= 1;
        st.in_flight += 1;
        metrics::registry().gauge("service.queue_depth", "sessions", st.queued as f64);
        drop(st);
        if let Some(t0) = t0 {
            metrics::registry().record(
                "service.admission_wait_us",
                t0.elapsed().as_secs_f64() * 1e6,
            );
        }
        Permit { admission: self }
    }

    fn depth(&self) -> usize {
        self.state.lock().queued
    }
}

/// An admitted slot; releasing it wakes one queued submission.
struct Permit<'a> {
    admission: &'a Admission,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self.admission.state.lock();
        st.in_flight -= 1;
        drop(st);
        self.admission.freed.notify_one();
    }
}

/// One shard: a session plus its interned span name.
pub struct ServiceShard {
    session: Session,
    span_name: Arc<str>,
}

impl ServiceShard {
    /// The shard's session (ledger queries, resets, observers).
    pub fn session(&self) -> &Session {
        &self.session
    }
}

/// N concurrent sessions over one parkit pool, behind admission control.
pub struct Service {
    shards: Vec<ServiceShard>,
    admission: Admission,
    next: AtomicUsize,
}

impl Service {
    /// Build the shards from per-shard configs. `cfg(i)` names shard
    /// `i`'s session config; any quirk failure aborts the whole build.
    pub fn new(
        limits: ServiceConfig,
        cfg: impl Fn(usize) -> SessionConfig,
    ) -> Result<Service, Failure> {
        let mut shards = Vec::with_capacity(limits.shards);
        for i in 0..limits.shards {
            shards.push(ServiceShard {
                session: Session::create(cfg(i))?,
                span_name: Arc::from(format!("shard{i}").as_str()),
            });
        }
        Ok(Service {
            shards,
            admission: Admission::new(limits.max_in_flight),
            next: AtomicUsize::new(0),
        })
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// A shard's session by index.
    pub fn shard(&self, i: usize) -> &Session {
        &self.shards[i].session
    }

    /// Submissions currently queued in admission.
    pub fn queue_depth(&self) -> usize {
        self.admission.depth()
    }

    /// Launch on shard `i`, blocking in admission while the service is
    /// at its in-flight limit.
    pub fn submit<R>(&self, i: usize, kernel: &Kernel, body: impl FnOnce() -> R) -> R {
        let shard = &self.shards[i];
        let _permit = self.admission.enter();
        let span = telemetry::SpanTimer::start();
        let r = shard.session.launch(kernel, body);
        if let Some(t) = span {
            t.finish(
                telemetry::SpanKind::Shard,
                Arc::clone(&shard.span_name),
                1,
                kernel.footprint.effective_bytes,
            );
        }
        r
    }

    /// Launch on the next shard round-robin; returns the shard index
    /// alongside the body's result.
    pub fn submit_any<R>(&self, kernel: &Kernel, body: impl FnOnce() -> R) -> (usize, R) {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        (i, self.submit(i, kernel, body))
    }

    /// Replay a recorded graph on shard `i` under one admission slot.
    pub fn replay(&self, i: usize, graph: &LaunchGraph<'_>) {
        let shard = &self.shards[i];
        let _permit = self.admission.enter();
        let span = telemetry::SpanTimer::start();
        graph.replay(&shard.session);
        if let Some(t) = span {
            t.finish(
                telemetry::SpanKind::Shard,
                Arc::clone(&shard.span_name),
                graph.n_launches(),
                0.0,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toolchain::Toolchain;
    use machine_model::PlatformId;

    fn service(shards: usize, max_in_flight: usize) -> Service {
        Service::new(ServiceConfig::new(shards, max_in_flight), |_| {
            SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda).app("svc")
        })
        .unwrap()
    }

    #[test]
    fn shards_keep_independent_ledgers() {
        let svc = service(3, 4);
        let k = Kernel::streaming("x", 1 << 16, 1e6, 0.0);
        svc.submit(0, &k, || ());
        svc.submit(0, &k, || ());
        svc.submit(2, &k, || ());
        assert_eq!(svc.shard(0).records().len(), 2);
        assert_eq!(svc.shard(1).records().len(), 0);
        assert_eq!(svc.shard(2).records().len(), 1);
    }

    #[test]
    fn round_robin_spreads_submissions() {
        let svc = service(2, 4);
        let k = Kernel::streaming("x", 1 << 16, 1e6, 0.0);
        let (a, ()) = svc.submit_any(&k, || ());
        let (b, ()) = svc.submit_any(&k, || ());
        assert_ne!(a, b);
        assert_eq!(svc.shard(a).records().len(), 1);
        assert_eq!(svc.shard(b).records().len(), 1);
    }

    #[test]
    fn admission_bounds_in_flight_launches() {
        use std::sync::atomic::AtomicUsize;
        let svc = Arc::new(service(4, 2));
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let k = Kernel::streaming("x", 1 << 12, 1e4, 0.0);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let (svc, live, peak, k) = (
                    Arc::clone(&svc),
                    Arc::clone(&live),
                    Arc::clone(&peak),
                    k.clone(),
                );
                scope.spawn(move || {
                    for _ in 0..50 {
                        svc.submit(t, &k, || {
                            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                            peak.fetch_max(now, Ordering::SeqCst);
                            live.fetch_sub(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "admission limit exceeded: {}",
            peak.load(Ordering::SeqCst)
        );
        for t in 0..4 {
            assert_eq!(svc.shard(t).records().len(), 50);
        }
        assert_eq!(svc.queue_depth(), 0);
    }

    #[test]
    fn graph_replays_go_through_admission() {
        let svc = service(2, 1);
        let k = Kernel::streaming("x", 1 << 16, 1e6, 0.0);
        let mut g = svc.shard(1).record();
        g.launch(&k, |_| {});
        g.launch(&k, |_| {});
        let g = g.finish();
        svc.replay(1, &g);
        svc.replay(1, &g);
        assert_eq!(svc.shard(1).records().len(), 4);
        assert_eq!(svc.shard(0).records().len(), 0);
    }
}
