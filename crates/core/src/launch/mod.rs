//! The launch path, split into four explicit, separately-testable layers:
//!
//! 1. [`record`] — build a [`LaunchNode`] from kernel + traits, no lock.
//! 2. [`price`] — quirks + toolchain `ExecProfile` + platform model,
//!    served by the fingerprint cache.
//! 3. [`execute`] — the functional body on parkit, plus launch telemetry.
//! 4. [`commit`] — one ledger append under the lock.
//!
//! [`Session::launch`](crate::Session::launch) is the thin eager
//! composition of the four; [`LaunchGraph`](crate::LaunchGraph) records a
//! sequence once and replays it with one ledger lock per replay.

pub mod commit;
pub mod execute;
pub mod price;
pub mod record;
pub mod residency;

pub use record::{AccessMode, DatAccess, LaunchMeta, LaunchNode};
pub use residency::{Residency, TransferStats};
