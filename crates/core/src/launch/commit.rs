//! Layer 4 — **commit**: append priced work to the session ledger.
//! The ledger mutex is the only lock this layer takes, and an append is
//! the only thing done under it — observers run after release.

use crate::launch::price::Priced;
use crate::session::{LaunchObserver, LaunchRecord};
use machine_model::{Platform, TransferDir};
use std::sync::Arc;

/// Intra-node MPI message latency (shared-memory transport).
const MSG_LATENCY: f64 = 0.8e-6;

/// The session's committed state: the simulated clock and the per-launch
/// ledger. Lives behind `Session`'s ledger mutex; the pricing cache has
/// its own lock, so a commit never waits on a cold pricing walk.
pub(crate) struct Ledger {
    pub elapsed: f64,
    pub comm_time: f64,
    pub records: Vec<LaunchRecord>,
    /// Optional per-launch observer (the verifier's footprint pass).
    /// Observes only — pricing and the ledger are unaffected. Invoked
    /// by the caller *after* the ledger lock is released.
    pub observer: Option<LaunchObserver>,
}

impl Ledger {
    pub fn new() -> Ledger {
        Ledger {
            elapsed: 0.0,
            comm_time: 0.0,
            records: Vec::new(),
            observer: None,
        }
    }

    /// Append one priced launch: advance the clock, push the record.
    /// Returns the record so the caller can invoke the observer after
    /// releasing the lock.
    pub fn append(&mut self, p: &Priced) -> LaunchRecord {
        let record = LaunchRecord {
            name: Arc::clone(&p.name),
            time: p.time,
            items: p.items,
            effective_bytes: p.effective_bytes,
            boundary: p.boundary,
        };
        self.elapsed += p.time.total;
        self.records.push(record.clone());
        record
    }

    /// Charge communication time (transfers, halo exchanges).
    pub fn charge_comm(&mut self, t: f64) {
        self.elapsed += t;
        self.comm_time += t;
    }
}

/// **Legacy** host↔device transfer cost: free on CPU platforms
/// (`None`), a flat scalar bandwidth plus fixed setup latency on GPUs.
/// This is the pre-interconnect model, kept verbatim as the
/// [`SessionConfig::eager_transfers`](crate::SessionConfig::eager_transfers)
/// escape hatch so bit-identity tests can compare against the historic
/// free-transfer semantics.
pub(crate) fn transfer_cost(platform: &Platform, bytes: f64) -> Option<f64> {
    platform.interconnect_bw.map(|bw| 10.0e-6 + bytes / bw)
}

/// Interconnect-priced transfer cost: direction- and allocation-aware,
/// nonzero on every platform (CPUs pay an in-package `memcpy`). The
/// cost SYCL buffers hide behind accessor creation.
pub(crate) fn priced_transfer_cost(
    platform: &Platform,
    dir: TransferDir,
    pinned: bool,
    bytes: f64,
) -> f64 {
    platform.interconnect.transfer_time(dir, pinned, bytes)
}

/// Interconnect-aware halo-exchange cost. Multi-rank sessions keep the
/// calibrated MPI formula unchanged (message latency + a copy through
/// the memory system); a single-rank session with a nonzero halo pays
/// the on-device pack/copy/unpack instead of exchanging for free — the
/// halo still has to move through device memory even without MPI.
pub(crate) fn priced_exchange_cost(
    platform: &Platform,
    ranks: usize,
    bytes: f64,
    messages: u64,
    pinned: bool,
) -> Option<f64> {
    if ranks > 1 {
        Some(messages as f64 * MSG_LATENCY + bytes / (0.5 * platform.mem.stream_bw))
    } else if bytes > 0.0 {
        Some(priced_transfer_cost(
            platform,
            TransferDir::D2D,
            pinned,
            bytes,
        ))
    } else {
        None
    }
}

/// Halo-exchange cost between `ranks` MPI ranks: latency per message
/// plus a copy through the memory system (in + out ⇒ half of STREAM).
/// Single-rank sessions exchange nothing (`None`).
pub(crate) fn exchange_cost(
    platform: &Platform,
    ranks: usize,
    bytes: f64,
    messages: u64,
) -> Option<f64> {
    if ranks <= 1 {
        return None;
    }
    Some(messages as f64 * MSG_LATENCY + bytes / (0.5 * platform.mem.stream_bw))
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine_model::{KernelTime, PlatformId};

    fn priced(name: &str, total: f64) -> Priced {
        Priced {
            time: KernelTime {
                total,
                memory: total,
                compute: 0.0,
                atomics: 0.0,
                launch: 0.0,
                reduction: 0.0,
                traffic: machine_model::MemoryTraffic {
                    dram_bytes: 0.0,
                    llc_bytes: 0.0,
                    bandwidth_efficiency: 1.0,
                },
            },
            name: Arc::from(name),
            items: 7,
            effective_bytes: 56.0,
            boundary: false,
        }
    }

    #[test]
    fn append_advances_the_clock_in_order() {
        let mut led = Ledger::new();
        led.append(&priced("a", 1.0));
        led.append(&priced("b", 2.0));
        assert_eq!(led.elapsed, 3.0);
        assert_eq!(led.records.len(), 2);
        assert_eq!(&*led.records[1].name, "b");
        assert_eq!(led.comm_time, 0.0);
    }

    #[test]
    fn comm_costs_match_the_session_formulas() {
        let gpu = Platform::get(PlatformId::A100);
        let t = transfer_cost(&gpu, 1e9).unwrap();
        assert!((t - 0.04).abs() / 0.04 < 0.01, "{t}");
        let cpu = Platform::get(PlatformId::GenoaX);
        assert!(transfer_cost(&cpu, 1e9).is_none());
        assert!(exchange_cost(&gpu, 1, 1e9, 100).is_none());
        assert!(exchange_cost(&cpu, 4, 1e9, 100).unwrap() > 0.0);
    }

    #[test]
    fn priced_transfers_are_nonzero_everywhere_and_direction_aware() {
        for p in machine_model::all_platforms() {
            for dir in [TransferDir::H2D, TransferDir::D2H, TransferDir::D2D] {
                for pinned in [false, true] {
                    let t = priced_transfer_cost(&p, dir, pinned, 1e8);
                    assert!(t > 0.0, "{} {dir:?}", p.name);
                }
            }
            let pageable = priced_transfer_cost(&p, TransferDir::H2D, false, 1e9);
            let pinned = priced_transfer_cost(&p, TransferDir::H2D, true, 1e9);
            if p.id.is_gpu() {
                assert!(pageable > 1.5 * pinned, "{}: pageable pays", p.name);
            } else {
                assert_eq!(pageable.to_bits(), pinned.to_bits());
            }
        }
    }

    #[test]
    fn priced_exchange_keeps_the_mpi_formula_and_prices_single_rank_halos() {
        let cpu = Platform::get(PlatformId::GenoaX);
        // Multi-rank: bit-identical to the legacy MPI formula.
        let legacy = exchange_cost(&cpu, 4, 1e9, 100).unwrap();
        let new = priced_exchange_cost(&cpu, 4, 1e9, 100, true).unwrap();
        assert_eq!(legacy.to_bits(), new.to_bits());
        // Single-rank with a real halo: the on-device copy is priced.
        let gpu = Platform::get(PlatformId::A100);
        let t = priced_exchange_cost(&gpu, 1, 1e9, 100, true).unwrap();
        assert!(
            t > 0.0 && t < 0.01,
            "D2D halo copy is fast but not free: {t}"
        );
        // Single-rank with no halo bytes: nothing to move.
        assert!(priced_exchange_cost(&gpu, 1, 0.0, 0, true).is_none());
    }
}
