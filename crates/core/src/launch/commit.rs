//! Layer 4 — **commit**: append priced work to the session ledger.
//! The ledger mutex is the only lock this layer takes, and an append is
//! the only thing done under it — observers run after release.

use crate::launch::price::Priced;
use crate::session::{LaunchObserver, LaunchRecord};
use machine_model::Platform;
use std::sync::Arc;

/// Intra-node MPI message latency (shared-memory transport).
const MSG_LATENCY: f64 = 0.8e-6;

/// The session's committed state: the simulated clock and the per-launch
/// ledger. Lives behind `Session`'s ledger mutex; the pricing cache has
/// its own lock, so a commit never waits on a cold pricing walk.
pub(crate) struct Ledger {
    pub elapsed: f64,
    pub comm_time: f64,
    pub records: Vec<LaunchRecord>,
    /// Optional per-launch observer (the verifier's footprint pass).
    /// Observes only — pricing and the ledger are unaffected. Invoked
    /// by the caller *after* the ledger lock is released.
    pub observer: Option<LaunchObserver>,
}

impl Ledger {
    pub fn new() -> Ledger {
        Ledger {
            elapsed: 0.0,
            comm_time: 0.0,
            records: Vec::new(),
            observer: None,
        }
    }

    /// Append one priced launch: advance the clock, push the record.
    /// Returns the record so the caller can invoke the observer after
    /// releasing the lock.
    pub fn append(&mut self, p: &Priced) -> LaunchRecord {
        let record = LaunchRecord {
            name: Arc::clone(&p.name),
            time: p.time,
            items: p.items,
            effective_bytes: p.effective_bytes,
            boundary: p.boundary,
        };
        self.elapsed += p.time.total;
        self.records.push(record.clone());
        record
    }

    /// Charge communication time (transfers, halo exchanges).
    pub fn charge_comm(&mut self, t: f64) {
        self.elapsed += t;
        self.comm_time += t;
    }
}

/// Host↔device transfer cost: free on CPU platforms (`None`), priced at
/// the interconnect bandwidth plus a fixed setup latency on GPUs — the
/// cost SYCL buffers hide behind accessor creation.
pub(crate) fn transfer_cost(platform: &Platform, bytes: f64) -> Option<f64> {
    platform.interconnect_bw.map(|bw| 10.0e-6 + bytes / bw)
}

/// Halo-exchange cost between `ranks` MPI ranks: latency per message
/// plus a copy through the memory system (in + out ⇒ half of STREAM).
/// Single-rank sessions exchange nothing (`None`).
pub(crate) fn exchange_cost(
    platform: &Platform,
    ranks: usize,
    bytes: f64,
    messages: u64,
) -> Option<f64> {
    if ranks <= 1 {
        return None;
    }
    Some(messages as f64 * MSG_LATENCY + bytes / (0.5 * platform.mem.stream_bw))
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine_model::{KernelTime, PlatformId};

    fn priced(name: &str, total: f64) -> Priced {
        Priced {
            time: KernelTime {
                total,
                memory: total,
                compute: 0.0,
                atomics: 0.0,
                launch: 0.0,
                reduction: 0.0,
                traffic: machine_model::MemoryTraffic {
                    dram_bytes: 0.0,
                    llc_bytes: 0.0,
                    bandwidth_efficiency: 1.0,
                },
            },
            name: Arc::from(name),
            items: 7,
            effective_bytes: 56.0,
            boundary: false,
        }
    }

    #[test]
    fn append_advances_the_clock_in_order() {
        let mut led = Ledger::new();
        led.append(&priced("a", 1.0));
        led.append(&priced("b", 2.0));
        assert_eq!(led.elapsed, 3.0);
        assert_eq!(led.records.len(), 2);
        assert_eq!(&*led.records[1].name, "b");
        assert_eq!(led.comm_time, 0.0);
    }

    #[test]
    fn comm_costs_match_the_session_formulas() {
        let gpu = Platform::get(PlatformId::A100);
        let t = transfer_cost(&gpu, 1e9).unwrap();
        assert!((t - 0.04).abs() / 0.04 < 0.01, "{t}");
        let cpu = Platform::get(PlatformId::GenoaX);
        assert!(transfer_cost(&cpu, 1e9).is_none());
        assert!(exchange_cost(&gpu, 1, 1e9, 100).is_none());
        assert!(exchange_cost(&cpu, 4, 1e9, 100).unwrap() > 0.0);
    }
}
