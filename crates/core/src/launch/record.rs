//! Layer 1 — **record**: turn a kernel into a [`LaunchNode`] without
//! taking any lock. A node is the kernel snapshot plus its precomputed
//! pricing fingerprint; both the eager path and [`LaunchGraph`]
//! (crate::LaunchGraph) recording go through here.

use crate::kernel::Kernel;
use std::hash::{Hash, Hasher};

/// Hash every pricing-relevant field of a kernel (f64s by bit pattern).
/// The session variant/toolchain/platform are fixed per session, so they
/// are not part of the key.
pub(crate) fn fingerprint(kernel: &Kernel) -> u64 {
    use machine_model::AccessProfile;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    let fp = &kernel.footprint;
    fp.name.hash(&mut h);
    fp.items.hash(&mut h);
    fp.effective_bytes.to_bits().hash(&mut h);
    fp.flops.to_bits().hash(&mut h);
    fp.transcendentals.to_bits().hash(&mut h);
    (fp.precision as u8).hash(&mut h);
    match &fp.access {
        AccessProfile::Streamed => 0u8.hash(&mut h),
        AccessProfile::Stencil(s) => {
            1u8.hash(&mut h);
            s.domain.hash(&mut h);
            s.radius.hash(&mut h);
            s.dats_read.hash(&mut h);
            s.dats_written.hash(&mut h);
        }
        AccessProfile::Indirect(i) => {
            2u8.hash(&mut h);
            i.from_size.hash(&mut h);
            i.to_size.hash(&mut h);
            i.arity.to_bits().hash(&mut h);
            i.locality.to_bits().hash(&mut h);
            i.indirect_bytes_per_item.to_bits().hash(&mut h);
        }
    }
    match &fp.atomics {
        None => 0u8.hash(&mut h),
        Some(a) => {
            1u8.hash(&mut h);
            a.updates.hash(&mut h);
            (a.kind == machine_model::AtomicKind::NativeFp).hash(&mut h);
        }
    }
    fp.reductions.hash(&mut h);
    let t = &kernel.traits;
    [
        t.stride_one_inner,
        t.indirect_writes,
        t.complex_body,
        t.hard_on_neon,
    ]
    .hash(&mut h);
    kernel.nd_shape.hash(&mut h);
    h.finish()
}

/// How a recorded launch accesses one dataset — the declared mode, not
/// an observation. Mirrors the DSL argument kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    Read,
    Write,
    ReadWrite,
}

/// One declared per-dat access of a recorded launch. `dat` is the
/// shadow-registry id (0 = anonymous: shadow was off when the dataset
/// was created, so the access cannot be tracked across launches).
#[derive(Debug, Clone, Copy)]
pub struct DatAccess {
    pub dat: u32,
    pub mode: AccessMode,
    /// Declared stencil radius of the reads; writes are own-point.
    pub radius: [usize; 3],
    /// Bytes per element, for modelled-traffic estimates.
    pub elem_bytes: f64,
}

impl DatAccess {
    /// Does this access read the dat (plain or as part of an RMW)?
    pub fn reads(&self) -> bool {
        matches!(self.mode, AccessMode::Read | AccessMode::ReadWrite)
    }

    /// Does this access write the dat?
    pub fn writes(&self) -> bool {
        matches!(self.mode, AccessMode::Write | AccessMode::ReadWrite)
    }

    /// Does this access read beyond the own point?
    pub fn stencil(&self) -> bool {
        self.radius != [0; 3]
    }
}

/// Declarative metadata captured alongside a recorded launch. It never
/// enters the pricing fingerprint or the ledger — it exists purely for
/// static analysis over the recorded graph (`graphlint`).
///
/// `opaque` marks launches whose access list is *not* exhaustive (op2
/// indirect loops with anonymous args, or plain [`GraphBuilder::launch`]
/// calls that declared nothing). Opaque launches suppress dat-level
/// hazard lints and break fusion chains — the analyzer must not claim
/// knowledge it does not have.
#[derive(Debug, Clone)]
pub struct LaunchMeta {
    pub accesses: Vec<DatAccess>,
    /// Iteration range, inclusive-exclusive, as the DSL declared it.
    pub lo: [i64; 3],
    pub hi: [i64; 3],
    /// op2 race-resolution scheme label ("atomics", "global", "hier").
    pub scheme: Option<&'static str>,
    pub opaque: bool,
}

impl LaunchMeta {
    /// A fully-declared launch: `accesses` is the complete access set.
    pub fn new(accesses: Vec<DatAccess>, lo: [i64; 3], hi: [i64; 3]) -> LaunchMeta {
        LaunchMeta {
            accesses,
            lo,
            hi,
            scheme: None,
            opaque: false,
        }
    }

    /// A launch the analyzer must treat as touching unknown data.
    pub fn opaque() -> LaunchMeta {
        LaunchMeta {
            accesses: Vec::new(),
            lo: [0; 3],
            hi: [0; 3],
            scheme: None,
            opaque: true,
        }
    }

    /// Tag with the op2 scheme label.
    pub fn with_scheme(mut self, scheme: &'static str) -> LaunchMeta {
        self.scheme = Some(scheme);
        self
    }

    /// True when every access is identified well enough for dat-level
    /// dataflow (non-opaque, at least one access, no anonymous ids).
    pub fn transparent(&self) -> bool {
        !self.opaque && !self.accesses.is_empty() && self.accesses.iter().all(|a| a.dat != 0)
    }
}

/// A recorded launch: an owned kernel snapshot plus its pricing
/// fingerprint. Building one touches no session state, so recording can
/// happen outside every lock.
#[derive(Debug, Clone)]
pub struct LaunchNode {
    pub(crate) kernel: Kernel,
    pub(crate) key: u64,
}

impl LaunchNode {
    /// Snapshot `kernel` and precompute its fingerprint.
    pub fn new(kernel: &Kernel) -> LaunchNode {
        LaunchNode {
            key: fingerprint(kernel),
            kernel: kernel.clone(),
        }
    }

    /// The recorded kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The pricing-cache key this node will be priced under.
    pub fn fingerprint(&self) -> u64 {
        self.key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_snapshot_carries_the_kernel_fingerprint() {
        let k = Kernel::streaming("copy", 1 << 10, 2.0 * 8.0 * 1024.0, 0.0);
        let n = LaunchNode::new(&k);
        assert_eq!(n.fingerprint(), fingerprint(&k));
        assert_eq!(n.kernel().footprint.name, "copy");
    }

    #[test]
    fn fingerprint_separates_shape_and_name() {
        let a = Kernel::streaming("k", 1 << 10, 1e4, 0.0);
        let b = Kernel::streaming("k", 1 << 12, 1e4, 0.0);
        let c = Kernel::streaming("j", 1 << 10, 1e4, 0.0);
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&c));
        assert_eq!(fingerprint(&a), fingerprint(&a.clone()));
    }
}
