//! Layer 1 — **record**: turn a kernel into a [`LaunchNode`] without
//! taking any lock. A node is the kernel snapshot plus its precomputed
//! pricing fingerprint; both the eager path and [`LaunchGraph`]
//! (crate::LaunchGraph) recording go through here.

use crate::kernel::Kernel;
use std::hash::{Hash, Hasher};

/// Hash every pricing-relevant field of a kernel (f64s by bit pattern).
/// The session variant/toolchain/platform are fixed per session, so they
/// are not part of the key.
pub(crate) fn fingerprint(kernel: &Kernel) -> u64 {
    use machine_model::AccessProfile;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    let fp = &kernel.footprint;
    fp.name.hash(&mut h);
    fp.items.hash(&mut h);
    fp.effective_bytes.to_bits().hash(&mut h);
    fp.flops.to_bits().hash(&mut h);
    fp.transcendentals.to_bits().hash(&mut h);
    (fp.precision as u8).hash(&mut h);
    match &fp.access {
        AccessProfile::Streamed => 0u8.hash(&mut h),
        AccessProfile::Stencil(s) => {
            1u8.hash(&mut h);
            s.domain.hash(&mut h);
            s.radius.hash(&mut h);
            s.dats_read.hash(&mut h);
            s.dats_written.hash(&mut h);
        }
        AccessProfile::Indirect(i) => {
            2u8.hash(&mut h);
            i.from_size.hash(&mut h);
            i.to_size.hash(&mut h);
            i.arity.to_bits().hash(&mut h);
            i.locality.to_bits().hash(&mut h);
            i.indirect_bytes_per_item.to_bits().hash(&mut h);
        }
    }
    match &fp.atomics {
        None => 0u8.hash(&mut h),
        Some(a) => {
            1u8.hash(&mut h);
            a.updates.hash(&mut h);
            (a.kind == machine_model::AtomicKind::NativeFp).hash(&mut h);
        }
    }
    fp.reductions.hash(&mut h);
    let t = &kernel.traits;
    [
        t.stride_one_inner,
        t.indirect_writes,
        t.complex_body,
        t.hard_on_neon,
    ]
    .hash(&mut h);
    kernel.nd_shape.hash(&mut h);
    h.finish()
}

/// A recorded launch: an owned kernel snapshot plus its pricing
/// fingerprint. Building one touches no session state, so recording can
/// happen outside every lock.
#[derive(Debug, Clone)]
pub struct LaunchNode {
    pub(crate) kernel: Kernel,
    pub(crate) key: u64,
}

impl LaunchNode {
    /// Snapshot `kernel` and precompute its fingerprint.
    pub fn new(kernel: &Kernel) -> LaunchNode {
        LaunchNode {
            key: fingerprint(kernel),
            kernel: kernel.clone(),
        }
    }

    /// The recorded kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The pricing-cache key this node will be priced under.
    pub fn fingerprint(&self) -> u64 {
        self.key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_snapshot_carries_the_kernel_fingerprint() {
        let k = Kernel::streaming("copy", 1 << 10, 2.0 * 8.0 * 1024.0, 0.0);
        let n = LaunchNode::new(&k);
        assert_eq!(n.fingerprint(), fingerprint(&k));
        assert_eq!(n.kernel().footprint.name, "copy");
    }

    #[test]
    fn fingerprint_separates_shape_and_name() {
        let a = Kernel::streaming("k", 1 << 10, 1e4, 0.0);
        let b = Kernel::streaming("k", 1 << 12, 1e4, 0.0);
        let c = Kernel::streaming("j", 1 << 10, 1e4, 0.0);
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&c));
        assert_eq!(fingerprint(&a), fingerprint(&a.clone()));
    }
}
