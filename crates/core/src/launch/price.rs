//! Layer 2 — **price**: walk the toolchain model for an `ExecProfile`,
//! apply atomic-path quirks, and run the platform model — memoised per
//! kernel fingerprint so repeat launches cost a hash lookup.

use crate::kernel::{Kernel, KernelTraits};
use crate::launch::commit::{priced_exchange_cost, priced_transfer_cost};
use crate::toolchain::{SyclVariant, Toolchain};
use machine_model::{predict, AtomicKind, ExecProfile, KernelTime, Platform, TransferDir};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Memoised pricing for one kernel fingerprint: everything the commit
/// layer needs to append a ledger entry without re-walking the models.
struct CachedPrice {
    /// The full fingerprint, kept to verify hash-bucket hits exactly.
    footprint: machine_model::KernelFootprint,
    traits: KernelTraits,
    nd_shape: Option<[usize; 3]>,
    name: Arc<str>,
    #[allow(dead_code)]
    exec: ExecProfile,
    time: KernelTime,
    boundary: bool,
}

impl CachedPrice {
    fn matches(&self, kernel: &Kernel) -> bool {
        self.footprint == kernel.footprint
            && self.traits == kernel.traits
            && self.nd_shape == kernel.nd_shape
    }
}

/// The output of the pricing layer for one launch: the simulated time
/// plus the interned name and ledger fields the commit layer appends.
#[derive(Debug, Clone)]
pub(crate) struct Priced {
    pub time: KernelTime,
    pub name: Arc<str>,
    pub items: u64,
    pub effective_bytes: f64,
    pub boundary: bool,
}

/// The session pricing context the cold path needs (fixed per session).
#[derive(Debug, Clone, Copy)]
pub(crate) struct PriceContext<'p> {
    pub platform: &'p Platform,
    pub toolchain: Toolchain,
    pub variant: SyclVariant,
    pub atomic_kind: AtomicKind,
}

/// The cold path: toolchain walk, optional atomic downgrade (MI250X +
/// OpenSYCL loses the unsafe atomics), platform model.
fn price_cold(ctx: &PriceContext<'_>, kernel: &Kernel) -> (KernelTime, ExecProfile) {
    let exec = ctx
        .toolchain
        .exec_profile(ctx.platform, ctx.variant, kernel);
    // Only clone the footprint when a downgrade actually applies.
    let time = match kernel.footprint.atomics {
        Some(a) if a.kind != ctx.atomic_kind => {
            let mut fp = kernel.footprint.clone();
            fp.atomics = Some(machine_model::AtomicProfile {
                kind: ctx.atomic_kind,
                ..a
            });
            predict(ctx.platform, &fp, &exec)
        }
        _ => predict(ctx.platform, &kernel.footprint, &exec),
    };
    (time, exec)
}

/// One communication operation as the pricing layer sees it — the comm
/// analogue of a kernel fingerprint. Everything that can change the
/// modelled time is in here; f64s compare by bit pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum CommOp {
    /// A host↔device (or on-device) copy through the interconnect.
    Transfer { dir: TransferDir, pinned: bool },
    /// A halo exchange between `ranks` MPI ranks (or the on-device halo
    /// copy when single-rank).
    Exchange { ranks: usize, pinned: bool },
}

/// Memoised comm price, kept with its full fingerprint so hash-bucket
/// hits are verified exactly (a collision degrades to a recompute).
#[derive(Debug, Clone, Copy)]
struct CachedComm {
    op: CommOp,
    bytes: f64,
    messages: u64,
    time: Option<f64>,
}

impl CachedComm {
    fn matches(&self, op: CommOp, bytes: f64, messages: u64) -> bool {
        self.op == op && self.bytes.to_bits() == bytes.to_bits() && self.messages == messages
    }
}

fn comm_fingerprint(op: CommOp, bytes: f64, messages: u64) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    match op {
        CommOp::Transfer { dir, pinned } => {
            0u8.hash(&mut h);
            dir.hash(&mut h);
            pinned.hash(&mut h);
        }
        CommOp::Exchange { ranks, pinned } => {
            1u8.hash(&mut h);
            ranks.hash(&mut h);
            pinned.hash(&mut h);
        }
    }
    bytes.to_bits().hash(&mut h);
    messages.hash(&mut h);
    h.finish()
}

/// Launch-pricing cache: kernel fingerprint hash → memoised price.
/// Hits are verified field-for-field against the stored fingerprint,
/// so a hash collision degrades to a cold launch, never a wrong price.
/// Transfer/exchange nodes get the same treatment in a second map —
/// comm ops are priced through the interconnect model exactly like
/// kernels through the roofline, and memoised the same way.
pub(crate) struct PriceCache {
    map: HashMap<u64, CachedPrice>,
    comm: HashMap<u64, CachedComm>,
    enabled: bool,
}

impl PriceCache {
    pub fn new(enabled: bool) -> PriceCache {
        PriceCache {
            map: HashMap::new(),
            comm: HashMap::new(),
            enabled,
        }
    }

    /// Price one communication op through the interconnect model,
    /// memoised per comm fingerprint. `None` means the op moves nothing
    /// (e.g. a zero-byte single-rank exchange).
    pub fn price_comm(
        &mut self,
        ctx: &PriceContext<'_>,
        op: CommOp,
        bytes: f64,
        messages: u64,
    ) -> Option<f64> {
        let key = comm_fingerprint(op, bytes, messages);
        if self.enabled {
            if let Some(c) = self.comm.get(&key) {
                if c.matches(op, bytes, messages) {
                    return c.time;
                }
            }
        }
        let time = match op {
            CommOp::Transfer { dir, pinned } => {
                Some(priced_transfer_cost(ctx.platform, dir, pinned, bytes))
            }
            CommOp::Exchange { ranks, pinned } => {
                priced_exchange_cost(ctx.platform, ranks, bytes, messages, pinned)
            }
        };
        if self.enabled {
            self.comm.insert(
                key,
                CachedComm {
                    op,
                    bytes,
                    messages,
                    time,
                },
            );
        }
        time
    }

    /// Price one launch under `key` (the kernel's fingerprint). Repeat
    /// launches of a cached fingerprint cost a hash lookup; cold
    /// launches walk the models once and memoise the result. The name
    /// is interned, so records of repeat launches share one allocation.
    pub fn price(&mut self, ctx: &PriceContext<'_>, kernel: &Kernel, key: u64) -> Priced {
        if self.enabled {
            if let Some(c) = self.map.get(&key) {
                if c.matches(kernel) {
                    if telemetry::enabled() {
                        telemetry::Counters::add(&telemetry::counters().pricing_cache_hits, 1);
                    }
                    return Priced {
                        time: c.time,
                        name: Arc::clone(&c.name),
                        items: c.footprint.items,
                        effective_bytes: c.footprint.effective_bytes,
                        boundary: c.boundary,
                    };
                }
            }
            if telemetry::enabled() {
                telemetry::Counters::add(&telemetry::counters().pricing_cache_misses, 1);
            }
        }

        let (time, exec) = price_cold(ctx, kernel);
        let name: Arc<str> = Arc::from(kernel.footprint.name.as_str());
        let boundary = kernel.footprint.is_boundary();
        if self.enabled {
            self.map.insert(
                key,
                CachedPrice {
                    footprint: kernel.footprint.clone(),
                    traits: kernel.traits,
                    nd_shape: kernel.nd_shape,
                    name: Arc::clone(&name),
                    exec,
                    time,
                    boundary,
                },
            );
        }
        Priced {
            time,
            name,
            items: kernel.footprint.items,
            effective_bytes: kernel.footprint.effective_bytes,
            boundary,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::record::fingerprint;
    use machine_model::PlatformId;

    fn ctx(p: &Platform) -> PriceContext<'_> {
        PriceContext {
            platform: p,
            toolchain: Toolchain::NativeCuda,
            variant: SyclVariant::Flat,
            atomic_kind: AtomicKind::NativeFp,
        }
    }

    #[test]
    fn cache_hits_return_bit_identical_prices_and_interned_names() {
        let p = Platform::get(PlatformId::A100);
        let ctx = ctx(&p);
        let k = Kernel::streaming("triad", 1 << 20, 3e7, 0.0);
        let key = fingerprint(&k);
        let mut cache = PriceCache::new(true);
        let cold = cache.price(&ctx, &k, key);
        let hit = cache.price(&ctx, &k, key);
        assert_eq!(cold.time.total.to_bits(), hit.time.total.to_bits());
        assert!(Arc::ptr_eq(&cold.name, &hit.name));
    }

    #[test]
    fn comm_prices_memoise_bit_identically() {
        let p = Platform::get(PlatformId::A100);
        let ctx = ctx(&p);
        let mut cache = PriceCache::new(true);
        let op = CommOp::Transfer {
            dir: TransferDir::H2D,
            pinned: true,
        };
        let cold = cache.price_comm(&ctx, op, 1e8, 0).unwrap();
        let hit = cache.price_comm(&ctx, op, 1e8, 0).unwrap();
        assert_eq!(cold.to_bits(), hit.to_bits());
        // Direction and allocation kind are part of the fingerprint.
        let d2h = cache
            .price_comm(
                &ctx,
                CommOp::Transfer {
                    dir: TransferDir::D2H,
                    pinned: true,
                },
                1e8,
                0,
            )
            .unwrap();
        let pageable = cache
            .price_comm(
                &ctx,
                CommOp::Transfer {
                    dir: TransferDir::H2D,
                    pinned: false,
                },
                1e8,
                0,
            )
            .unwrap();
        assert_ne!(cold.to_bits(), d2h.to_bits());
        assert!(pageable > cold);
    }

    #[test]
    fn disabled_cache_stays_cold_but_prices_identically() {
        let p = Platform::get(PlatformId::A100);
        let ctx = ctx(&p);
        let k = Kernel::streaming("copy", 1 << 18, 4e6, 0.0);
        let key = fingerprint(&k);
        let mut on = PriceCache::new(true);
        let mut off = PriceCache::new(false);
        let a = on.price(&ctx, &k, key);
        let b = off.price(&ctx, &k, key);
        let c = off.price(&ctx, &k, key);
        assert_eq!(a.time.total.to_bits(), b.time.total.to_bits());
        assert_eq!(b.time.total.to_bits(), c.time.total.to_bits());
        assert!(!Arc::ptr_eq(&b.name, &c.name), "no interning without cache");
    }
}
