//! Layer 2 — **price**: walk the toolchain model for an `ExecProfile`,
//! apply atomic-path quirks, and run the platform model — memoised per
//! kernel fingerprint so repeat launches cost a hash lookup.

use crate::kernel::{Kernel, KernelTraits};
use crate::toolchain::{SyclVariant, Toolchain};
use machine_model::{predict, AtomicKind, ExecProfile, KernelTime, Platform};
use std::collections::HashMap;
use std::sync::Arc;

/// Memoised pricing for one kernel fingerprint: everything the commit
/// layer needs to append a ledger entry without re-walking the models.
struct CachedPrice {
    /// The full fingerprint, kept to verify hash-bucket hits exactly.
    footprint: machine_model::KernelFootprint,
    traits: KernelTraits,
    nd_shape: Option<[usize; 3]>,
    name: Arc<str>,
    #[allow(dead_code)]
    exec: ExecProfile,
    time: KernelTime,
    boundary: bool,
}

impl CachedPrice {
    fn matches(&self, kernel: &Kernel) -> bool {
        self.footprint == kernel.footprint
            && self.traits == kernel.traits
            && self.nd_shape == kernel.nd_shape
    }
}

/// The output of the pricing layer for one launch: the simulated time
/// plus the interned name and ledger fields the commit layer appends.
#[derive(Debug, Clone)]
pub(crate) struct Priced {
    pub time: KernelTime,
    pub name: Arc<str>,
    pub items: u64,
    pub effective_bytes: f64,
    pub boundary: bool,
}

/// The session pricing context the cold path needs (fixed per session).
#[derive(Debug, Clone, Copy)]
pub(crate) struct PriceContext<'p> {
    pub platform: &'p Platform,
    pub toolchain: Toolchain,
    pub variant: SyclVariant,
    pub atomic_kind: AtomicKind,
}

/// The cold path: toolchain walk, optional atomic downgrade (MI250X +
/// OpenSYCL loses the unsafe atomics), platform model.
fn price_cold(ctx: &PriceContext<'_>, kernel: &Kernel) -> (KernelTime, ExecProfile) {
    let exec = ctx
        .toolchain
        .exec_profile(ctx.platform, ctx.variant, kernel);
    // Only clone the footprint when a downgrade actually applies.
    let time = match kernel.footprint.atomics {
        Some(a) if a.kind != ctx.atomic_kind => {
            let mut fp = kernel.footprint.clone();
            fp.atomics = Some(machine_model::AtomicProfile {
                kind: ctx.atomic_kind,
                ..a
            });
            predict(ctx.platform, &fp, &exec)
        }
        _ => predict(ctx.platform, &kernel.footprint, &exec),
    };
    (time, exec)
}

/// Launch-pricing cache: kernel fingerprint hash → memoised price.
/// Hits are verified field-for-field against the stored fingerprint,
/// so a hash collision degrades to a cold launch, never a wrong price.
pub(crate) struct PriceCache {
    map: HashMap<u64, CachedPrice>,
    enabled: bool,
}

impl PriceCache {
    pub fn new(enabled: bool) -> PriceCache {
        PriceCache {
            map: HashMap::new(),
            enabled,
        }
    }

    /// Price one launch under `key` (the kernel's fingerprint). Repeat
    /// launches of a cached fingerprint cost a hash lookup; cold
    /// launches walk the models once and memoise the result. The name
    /// is interned, so records of repeat launches share one allocation.
    pub fn price(&mut self, ctx: &PriceContext<'_>, kernel: &Kernel, key: u64) -> Priced {
        if self.enabled {
            if let Some(c) = self.map.get(&key) {
                if c.matches(kernel) {
                    if telemetry::enabled() {
                        telemetry::Counters::add(&telemetry::counters().pricing_cache_hits, 1);
                    }
                    return Priced {
                        time: c.time,
                        name: Arc::clone(&c.name),
                        items: c.footprint.items,
                        effective_bytes: c.footprint.effective_bytes,
                        boundary: c.boundary,
                    };
                }
            }
            if telemetry::enabled() {
                telemetry::Counters::add(&telemetry::counters().pricing_cache_misses, 1);
            }
        }

        let (time, exec) = price_cold(ctx, kernel);
        let name: Arc<str> = Arc::from(kernel.footprint.name.as_str());
        let boundary = kernel.footprint.is_boundary();
        if self.enabled {
            self.map.insert(
                key,
                CachedPrice {
                    footprint: kernel.footprint.clone(),
                    traits: kernel.traits,
                    nd_shape: kernel.nd_shape,
                    name: Arc::clone(&name),
                    exec,
                    time,
                    boundary,
                },
            );
        }
        Priced {
            time,
            name,
            items: kernel.footprint.items,
            effective_bytes: kernel.footprint.effective_bytes,
            boundary,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::record::fingerprint;
    use machine_model::PlatformId;

    fn ctx(p: &Platform) -> PriceContext<'_> {
        PriceContext {
            platform: p,
            toolchain: Toolchain::NativeCuda,
            variant: SyclVariant::Flat,
            atomic_kind: AtomicKind::NativeFp,
        }
    }

    #[test]
    fn cache_hits_return_bit_identical_prices_and_interned_names() {
        let p = Platform::get(PlatformId::A100);
        let ctx = ctx(&p);
        let k = Kernel::streaming("triad", 1 << 20, 3e7, 0.0);
        let key = fingerprint(&k);
        let mut cache = PriceCache::new(true);
        let cold = cache.price(&ctx, &k, key);
        let hit = cache.price(&ctx, &k, key);
        assert_eq!(cold.time.total.to_bits(), hit.time.total.to_bits());
        assert!(Arc::ptr_eq(&cold.name, &hit.name));
    }

    #[test]
    fn disabled_cache_stays_cold_but_prices_identically() {
        let p = Platform::get(PlatformId::A100);
        let ctx = ctx(&p);
        let k = Kernel::streaming("copy", 1 << 18, 4e6, 0.0);
        let key = fingerprint(&k);
        let mut on = PriceCache::new(true);
        let mut off = PriceCache::new(false);
        let a = on.price(&ctx, &k, key);
        let b = off.price(&ctx, &k, key);
        let c = off.price(&ctx, &k, key);
        assert_eq!(a.time.total.to_bits(), b.time.total.to_bits());
        assert_eq!(b.time.total.to_bits(), c.time.total.to_bits());
        assert!(!Arc::ptr_eq(&b.name, &c.name), "no interning without cache");
    }
}
