//! Layer 3 — **execute**: run the functional body (on parkit, via the
//! caller's closure) and emit the launch telemetry that goes with it.
//! This layer owns the wall-clock span and the `launches`/`bytes_moved`
//! counters; it never touches the ledger or the pricing cache.

use std::sync::Arc;

/// Wall-clock span plus counters around one launch. Construction is the
/// single branch the disabled path pays.
pub(crate) struct LaunchSpan(Option<telemetry::SpanTimer>);

impl LaunchSpan {
    /// Start timing a launch (no-op when telemetry is disabled).
    pub fn start() -> LaunchSpan {
        LaunchSpan(telemetry::SpanTimer::start())
    }

    /// Finish the span: bump the launch counters and record a
    /// `LaunchSpan` carrying the kernel name, iteration count, effective
    /// bytes and the simulated seconds, so traces can report achieved
    /// GB/s per kernel.
    pub fn finish(self, name: Arc<str>, items: u64, effective_bytes: f64, sim_secs: f64) {
        if let Some(t) = self.0 {
            telemetry::Counters::add(&telemetry::counters().launches, 1);
            telemetry::Counters::add(&telemetry::counters().bytes_moved, effective_bytes as u64);
            t.finish_timed(
                telemetry::SpanKind::Launch,
                name,
                items,
                effective_bytes,
                sim_secs,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_is_free_and_silent() {
        // Telemetry is off by default in tests: the span must be None
        // and finishing it must not record anything.
        let s = LaunchSpan::start();
        assert!(s.0.is_none());
        s.finish(Arc::from("k"), 1, 8.0, 1e-6);
    }
}
