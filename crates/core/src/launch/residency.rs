//! Per-dat host/device residency tracking.
//!
//! The interconnect model prices a transfer node only when it actually
//! has to move bytes. This tracker holds the session's view of where
//! each dataset's valid copy lives and decides, in recorded order,
//! whether an upload/download is **real** (the destination copy is
//! stale or absent) or **elided** (the destination already holds a
//! valid copy — the SYCL runtime would skip the copy entirely).
//!
//! The rules mirror a buffer/accessor runtime:
//!
//! * every dat starts [`Residency::HostOnly`] — it was allocated and
//!   filled on the host;
//! * a real upload or download leaves both copies valid
//!   ([`Residency::Shared`]);
//! * a kernel *write* to a dat invalidates the host copy
//!   ([`Residency::DeviceOnly`]) — launch metadata drives this, so only
//!   graphs with declared access sets see writeback invalidation;
//! * transfers that declare no dats (volume-only recordings) are always
//!   real — the tracker refuses to guess;
//! * D2D copies never touch host validity and are never elided.
//!
//! Elision decisions are part of the priced timeline, so both replay
//! paths (batched commit and the eager fallback) consult this tracker
//! through the same session helpers, in the same recorded order — the
//! bit-identical-ledger invariant extends to elision.

use crate::launch::record::LaunchMeta;
use machine_model::TransferDir;
use std::collections::HashMap;

/// Where the valid copy (or copies) of one dat currently live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// Only the host copy is valid (initial state; never uploaded, or
    /// host-written since the last upload).
    HostOnly,
    /// Only the device copy is valid (a kernel wrote it since the last
    /// transfer).
    DeviceOnly,
    /// Both copies are valid (the state right after a real transfer).
    Shared,
}

/// Counts of real vs elided transfers, for reports and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferStats {
    pub real: u64,
    pub elided: u64,
}

/// The session's per-dat residency map (see module docs).
#[derive(Debug, Default)]
pub struct ResidencyTracker {
    map: HashMap<u32, Residency>,
    stats: TransferStats,
}

impl ResidencyTracker {
    pub fn new() -> ResidencyTracker {
        ResidencyTracker::default()
    }

    /// Current residency of a dat (unknown dats are host-only).
    pub fn residency(&self, dat: u32) -> Residency {
        self.map.get(&dat).copied().unwrap_or(Residency::HostOnly)
    }

    fn device_valid(&self, dat: u32) -> bool {
        matches!(
            self.residency(dat),
            Residency::DeviceOnly | Residency::Shared
        )
    }

    fn host_valid(&self, dat: u32) -> bool {
        matches!(self.residency(dat), Residency::HostOnly | Residency::Shared)
    }

    /// Decide whether a transfer moves bytes, and update the map as if
    /// it ran. Returns `true` when the transfer is real (must be
    /// priced), `false` when it is elided.
    pub fn apply_transfer(&mut self, dir: TransferDir, dats: &[u32]) -> bool {
        // Id 0 marks an anonymous dat (shadow registry off at creation):
        // distinct datasets share it, so it can never prove a transfer
        // elidable and never enters the map.
        let real = match dir {
            // Anonymous transfers (no named dats) are always real.
            _ if dats.iter().all(|&d| d == 0) => true,
            TransferDir::H2D => dats.iter().any(|&d| d == 0 || !self.device_valid(d)),
            TransferDir::D2H => dats.iter().any(|&d| d == 0 || !self.host_valid(d)),
            TransferDir::D2D => true,
        };
        if real {
            for &d in dats {
                if d == 0 {
                    continue;
                }
                // The copy leaves both sides valid. (D2D moves between
                // device buffers; the host copy's validity is untouched,
                // and the destination is device-side by definition.)
                match dir {
                    TransferDir::H2D | TransferDir::D2H => {
                        self.map.insert(d, Residency::Shared);
                    }
                    TransferDir::D2D => {}
                }
            }
            self.stats.real += 1;
        } else {
            self.stats.elided += 1;
        }
        real
    }

    /// Apply a launch's declared writes: a device kernel writing a dat
    /// invalidates the host copy. Anonymous accesses (id 0) and opaque
    /// launches declare nothing and change nothing.
    pub fn apply_launch(&mut self, meta: &LaunchMeta) {
        for a in &meta.accesses {
            if a.dat != 0 && a.writes() {
                self.map.insert(a.dat, Residency::DeviceOnly);
            }
        }
    }

    /// Real/elided transfer counts so far.
    pub fn stats(&self) -> TransferStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::record::{AccessMode, DatAccess};

    fn write_meta(dat: u32) -> LaunchMeta {
        LaunchMeta::new(
            vec![DatAccess {
                dat,
                mode: AccessMode::Write,
                radius: [0; 3],
                elem_bytes: 8.0,
            }],
            [0; 3],
            [8, 1, 1],
        )
    }

    #[test]
    fn double_upload_elides_the_second_copy() {
        let mut r = ResidencyTracker::new();
        assert!(r.apply_transfer(TransferDir::H2D, &[7]), "first is real");
        assert!(
            !r.apply_transfer(TransferDir::H2D, &[7]),
            "second is elided"
        );
        assert_eq!(r.stats(), TransferStats { real: 1, elided: 1 });
        assert_eq!(r.residency(7), Residency::Shared);
    }

    #[test]
    fn download_after_writeback_is_real_then_elided() {
        let mut r = ResidencyTracker::new();
        r.apply_transfer(TransferDir::H2D, &[3]);
        // Fresh dat: host already valid, a download would move nothing.
        assert!(!r.apply_transfer(TransferDir::D2H, &[3]));
        // A kernel writes it on the device: host copy is now stale.
        r.apply_launch(&write_meta(3));
        assert_eq!(r.residency(3), Residency::DeviceOnly);
        assert!(r.apply_transfer(TransferDir::D2H, &[3]), "readback is real");
        assert_eq!(r.residency(3), Residency::Shared);
        assert!(!r.apply_transfer(TransferDir::D2H, &[3]), "re-read elided");
    }

    #[test]
    fn never_uploaded_dat_downloads_for_free_but_uploads_for_real() {
        let mut r = ResidencyTracker::new();
        assert!(
            !r.apply_transfer(TransferDir::D2H, &[1]),
            "host-only: elided"
        );
        assert!(r.apply_transfer(TransferDir::H2D, &[1]));
    }

    #[test]
    fn anonymous_and_d2d_transfers_never_elide() {
        let mut r = ResidencyTracker::new();
        assert!(r.apply_transfer(TransferDir::H2D, &[]));
        assert!(
            r.apply_transfer(TransferDir::H2D, &[]),
            "no dats, no memory"
        );
        // Id 0 is shared by every anonymous dat: never elided, never
        // remembered.
        assert!(r.apply_transfer(TransferDir::H2D, &[0]));
        assert!(
            r.apply_transfer(TransferDir::H2D, &[0]),
            "id 0 is anonymous"
        );
        assert_eq!(r.residency(0), Residency::HostOnly);
        r.apply_transfer(TransferDir::H2D, &[5]);
        assert!(r.apply_transfer(TransferDir::D2D, &[5]));
        assert!(r.apply_transfer(TransferDir::D2D, &[5]));
    }

    #[test]
    fn multi_dat_transfer_is_real_if_any_dat_needs_it() {
        let mut r = ResidencyTracker::new();
        r.apply_transfer(TransferDir::H2D, &[1]);
        // 1 is resident, 2 is not: the batch still moves.
        assert!(r.apply_transfer(TransferDir::H2D, &[1, 2]));
        // Now both are resident.
        assert!(!r.apply_transfer(TransferDir::H2D, &[1, 2]));
    }

    #[test]
    fn opaque_launches_do_not_invalidate() {
        let mut r = ResidencyTracker::new();
        r.apply_transfer(TransferDir::H2D, &[4]);
        r.apply_launch(&LaunchMeta::opaque());
        assert_eq!(r.residency(4), Residency::Shared);
    }
}
