//! SYCL-style buffers.
//!
//! In real SYCL a `buffer` mediates host/device data movement; in this
//! simulation kernels execute on the host, so a [`Buffer`] is a thin
//! owner of the data that keeps the application code looking like the
//! SYCL original and lets the runtime account transfer volumes.

/// A typed, contiguous device-visible allocation.
#[derive(Debug, Clone)]
pub struct Buffer<T> {
    data: Vec<T>,
    name: String,
}

impl<T: Clone + Default> Buffer<T> {
    /// Allocate `len` default-initialised elements.
    pub fn zeroed(name: &str, len: usize) -> Self {
        Buffer {
            data: vec![T::default(); len],
            name: name.to_owned(),
        }
    }
}

impl<T> Buffer<T> {
    /// Wrap existing host data.
    pub fn from_vec(name: &str, data: Vec<T>) -> Self {
        Buffer {
            data,
            name: name.to_owned(),
        }
    }

    /// Build from an index function.
    pub fn from_fn(name: &str, len: usize, f: impl FnMut(usize) -> T) -> Self {
        Buffer {
            data: (0..len).map(f).collect(),
            name: name.to_owned(),
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Buffer name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Size in bytes.
    pub fn bytes(&self) -> f64 {
        (self.data.len() * std::mem::size_of::<T>()) as f64
    }

    /// Read access (the SYCL `accessor<read>` analogue).
    pub fn read(&self) -> &[T] {
        &self.data
    }

    /// Write access (the SYCL `accessor<read_write>` analogue).
    pub fn write(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the buffer, returning the host data.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut b = Buffer::<f64>::zeroed("u", 128);
        assert_eq!(b.len(), 128);
        assert!(!b.is_empty());
        assert_eq!(b.bytes(), 1024.0);
        b.write()[5] = 2.5;
        assert_eq!(b.read()[5], 2.5);
        assert_eq!(b.name(), "u");
    }

    #[test]
    fn from_fn_fills_by_index() {
        let b = Buffer::from_fn("idx", 10, |i| i as u32 * 2);
        assert_eq!(b.read()[7], 14);
        assert_eq!(b.into_vec().len(), 10);
    }

    #[test]
    fn from_vec_round_trips() {
        let v = vec![1i32, 2, 3];
        let b = Buffer::from_vec("v", v.clone());
        assert_eq!(b.into_vec(), v);
    }
}
