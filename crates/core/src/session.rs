//! Sessions: the simulated analogue of "compile the app with toolchain X
//! and run it on machine Y".
//!
//! A [`Session`] owns the simulated clock and a per-launch ledger. Every
//! [`Session::launch`] call (i) checks the quirk matrix, (ii) asks the
//! toolchain model for an [`ExecProfile`], (iii) prices the launch on the
//! platform model, (iv) runs the kernel body *functionally* so the
//! application's numerics are real, and (v) records the result.

use crate::error::Failure;
use crate::kernel::{Kernel, KernelTraits};
use crate::quirks;
use crate::toolchain::{Scheme, SyclVariant, Toolchain};
use machine_model::{predict, ExecProfile, KernelTime, Platform, PlatformId};
use parkit::sync::Mutex;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Intra-node MPI message latency (shared-memory transport).
const MSG_LATENCY: f64 = 0.8e-6;

/// One priced kernel launch. The name is interned (`Arc<str>`), so
/// records of repeat launches share one allocation.
#[derive(Debug, Clone)]
pub struct LaunchRecord {
    pub name: Arc<str>,
    pub time: KernelTime,
    pub items: u64,
    pub effective_bytes: f64,
    /// Small boundary-style loop (latency-dominated)?
    pub boundary: bool,
}

/// Everything needed to create a session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    pub platform: PlatformId,
    pub toolchain: Toolchain,
    pub variant: SyclVariant,
    pub app: String,
    pub scheme: Option<Scheme>,
    /// When set, kernel bodies are *not* executed — launches are priced
    /// analytically only. Used by the figure harness to run paper-sized
    /// problems (e.g. 1000³ Acoustic, 8M-vertex MG-CFD) whose footprints
    /// depend only on sizes; functional validation happens at reduced
    /// sizes in the test suite.
    pub dry_run: bool,
    /// Memoise launch pricing per kernel fingerprint (on by default).
    /// Disable to force a full toolchain-model walk on every launch —
    /// only useful for benchmarking the cache itself.
    pub pricing_cache: bool,
}

impl SessionConfig {
    /// Start a config; variant defaults to `Flat`, app to "unnamed".
    pub fn new(platform: PlatformId, toolchain: Toolchain) -> Self {
        SessionConfig {
            platform,
            toolchain,
            variant: SyclVariant::Flat,
            app: "unnamed".to_owned(),
            scheme: None,
            dry_run: false,
            pricing_cache: true,
        }
    }

    /// Set the SYCL formulation (ignored by native toolchains).
    pub fn variant(mut self, v: SyclVariant) -> Self {
        self.variant = v;
        self
    }

    /// Name the application (drives the quirk matrix).
    pub fn app(mut self, app: &str) -> Self {
        self.app = app.to_owned();
        self
    }

    /// Set the unstructured race-resolution scheme.
    pub fn scheme(mut self, s: Scheme) -> Self {
        self.scheme = Some(s);
        self
    }

    /// Price launches without executing kernel bodies (see `dry_run`).
    pub fn dry_run(mut self) -> Self {
        self.dry_run = true;
        self
    }

    /// Disable the launch-pricing cache (see `pricing_cache`).
    pub fn no_pricing_cache(mut self) -> Self {
        self.pricing_cache = false;
        self
    }
}

/// Memoised pricing for one kernel fingerprint: everything `launch_timed`
/// needs to append a ledger entry without re-walking the toolchain model.
struct CachedPrice {
    /// The full fingerprint, kept to verify hash-bucket hits exactly.
    footprint: machine_model::KernelFootprint,
    traits: KernelTraits,
    nd_shape: Option<[usize; 3]>,
    name: Arc<str>,
    #[allow(dead_code)]
    exec: ExecProfile,
    time: KernelTime,
    boundary: bool,
}

impl CachedPrice {
    fn matches(&self, kernel: &Kernel) -> bool {
        self.footprint == kernel.footprint
            && self.traits == kernel.traits
            && self.nd_shape == kernel.nd_shape
    }
}

/// Hash every pricing-relevant field of a kernel (f64s by bit pattern).
/// The session variant/toolchain/platform are fixed per session, so they
/// are not part of the key.
fn fingerprint(kernel: &Kernel) -> u64 {
    use machine_model::AccessProfile;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    let fp = &kernel.footprint;
    fp.name.hash(&mut h);
    fp.items.hash(&mut h);
    fp.effective_bytes.to_bits().hash(&mut h);
    fp.flops.to_bits().hash(&mut h);
    fp.transcendentals.to_bits().hash(&mut h);
    (fp.precision as u8).hash(&mut h);
    match &fp.access {
        AccessProfile::Streamed => 0u8.hash(&mut h),
        AccessProfile::Stencil(s) => {
            1u8.hash(&mut h);
            s.domain.hash(&mut h);
            s.radius.hash(&mut h);
            s.dats_read.hash(&mut h);
            s.dats_written.hash(&mut h);
        }
        AccessProfile::Indirect(i) => {
            2u8.hash(&mut h);
            i.from_size.hash(&mut h);
            i.to_size.hash(&mut h);
            i.arity.to_bits().hash(&mut h);
            i.locality.to_bits().hash(&mut h);
            i.indirect_bytes_per_item.to_bits().hash(&mut h);
        }
    }
    match &fp.atomics {
        None => 0u8.hash(&mut h),
        Some(a) => {
            1u8.hash(&mut h);
            a.updates.hash(&mut h);
            (a.kind == machine_model::AtomicKind::NativeFp).hash(&mut h);
        }
    }
    fp.reductions.hash(&mut h);
    let t = &kernel.traits;
    [
        t.stride_one_inner,
        t.indirect_writes,
        t.complex_body,
        t.hard_on_neon,
    ]
    .hash(&mut h);
    kernel.nd_shape.hash(&mut h);
    h.finish()
}

/// Callback invoked with every launch record as it is appended to the
/// ledger (after the state lock is released, so observers may call back
/// into the session).
pub type LaunchObserver = Arc<dyn Fn(&LaunchRecord) + Send + Sync>;

struct State {
    elapsed: f64,
    comm_time: f64,
    records: Vec<LaunchRecord>,
    /// Launch-pricing cache: kernel fingerprint hash → memoised price.
    /// Hits are verified field-for-field against the stored fingerprint,
    /// so a hash collision degrades to a cold launch, never a wrong price.
    price_cache: HashMap<u64, CachedPrice>,
    /// Optional per-launch observer (the verifier's footprint pass).
    /// Observes only — pricing and the ledger are unaffected.
    observer: Option<LaunchObserver>,
}

/// A live (platform × toolchain × variant × app) execution context.
pub struct Session {
    platform: Platform,
    cfg: SessionConfig,
    state: Mutex<State>,
}

impl Session {
    /// Create a session, failing exactly when the paper reports the
    /// combination failed (unsupported target, miscompilation, ...).
    pub fn create(cfg: SessionConfig) -> Result<Session, Failure> {
        if let Some(fail) = quirks::check(
            &cfg.app,
            cfg.platform,
            cfg.toolchain,
            cfg.variant,
            cfg.scheme,
        ) {
            return Err(fail);
        }
        Ok(Session {
            platform: Platform::get(cfg.platform),
            cfg,
            state: Mutex::new(State {
                elapsed: 0.0,
                comm_time: 0.0,
                records: Vec::new(),
                price_cache: HashMap::new(),
                observer: None,
            }),
        })
    }

    /// The hardware model this session runs on.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// MPI ranks this toolchain decomposes the node into.
    pub fn ranks(&self) -> usize {
        self.cfg.toolchain.ranks(&self.platform)
    }

    /// The atomic path kernels get in this session.
    pub fn atomic_kind(&self) -> machine_model::AtomicKind {
        quirks::atomic_kind(self.cfg.platform, self.cfg.toolchain)
    }

    /// Install (or clear) a per-launch observer. The callback sees each
    /// [`LaunchRecord`] right after it is appended to the ledger; it
    /// cannot change pricing, timing, or the ledger itself.
    pub fn set_launch_observer(&self, observer: Option<LaunchObserver>) {
        self.state.lock().observer = observer;
    }

    /// Price and record one kernel launch, then run `body` functionally.
    /// Returns whatever the body returns.
    pub fn launch<R>(&self, kernel: &Kernel, body: impl FnOnce() -> R) -> R {
        let (r, _) = self.launch_timed(kernel, body);
        r
    }

    /// True when kernel bodies should actually execute.
    pub fn executes(&self) -> bool {
        !self.cfg.dry_run
    }

    /// Like [`Session::launch`], also returning the simulated timing.
    /// When [`telemetry`] is enabled the launch records a `LaunchSpan`
    /// carrying the kernel name, iteration count, effective bytes and the
    /// simulated seconds, so traces can report achieved GB/s per kernel.
    pub fn launch_timed<R>(&self, kernel: &Kernel, body: impl FnOnce() -> R) -> (R, KernelTime) {
        let span = telemetry::SpanTimer::start();
        let (time, name) = self.price(kernel);
        let r = body();
        if let Some(t) = span {
            telemetry::Counters::add(&telemetry::counters().launches, 1);
            telemetry::Counters::add(
                &telemetry::counters().bytes_moved,
                kernel.footprint.effective_bytes as u64,
            );
            t.finish_timed(
                telemetry::SpanKind::Launch,
                name,
                kernel.footprint.items,
                kernel.footprint.effective_bytes,
                time.total,
            );
        }
        (r, time)
    }

    /// Price one launch and append it to the ledger. Repeat launches of a
    /// cached kernel fingerprint cost a hash lookup plus a record push;
    /// cold launches walk the toolchain and platform models once and
    /// memoise the result. Also returns the interned kernel name so the
    /// caller can attach it to a trace span without re-allocating.
    fn price(&self, kernel: &Kernel) -> (KernelTime, Arc<str>) {
        let key = fingerprint(kernel);
        let mut st = self.state.lock();

        if self.cfg.pricing_cache {
            if let Some(c) = st.price_cache.get(&key) {
                if c.matches(kernel) {
                    if telemetry::enabled() {
                        telemetry::Counters::add(&telemetry::counters().pricing_cache_hits, 1);
                    }
                    let time = c.time;
                    let name = Arc::clone(&c.name);
                    let record = LaunchRecord {
                        name: Arc::clone(&name),
                        time,
                        items: c.footprint.items,
                        effective_bytes: c.footprint.effective_bytes,
                        boundary: c.boundary,
                    };
                    st.elapsed += time.total;
                    st.records.push(record.clone());
                    let observer = st.observer.clone();
                    drop(st);
                    if let Some(obs) = observer {
                        obs(&record);
                    }
                    return (time, name);
                }
            }
            if telemetry::enabled() {
                telemetry::Counters::add(&telemetry::counters().pricing_cache_misses, 1);
            }
        }

        let exec = self
            .cfg
            .toolchain
            .exec_profile(&self.platform, self.cfg.variant, kernel);

        // Toolchain quirks can downgrade the atomic path (MI250X +
        // OpenSYCL loses the unsafe atomics). Only clone the footprint
        // when a downgrade actually applies.
        let time = match kernel.footprint.atomics {
            Some(a) if a.kind != self.atomic_kind() => {
                let mut fp = kernel.footprint.clone();
                fp.atomics = Some(machine_model::AtomicProfile {
                    kind: self.atomic_kind(),
                    ..a
                });
                predict(&self.platform, &fp, &exec)
            }
            _ => predict(&self.platform, &kernel.footprint, &exec),
        };

        let name: Arc<str> = Arc::from(kernel.footprint.name.as_str());
        let boundary = kernel.footprint.is_boundary();
        let record = LaunchRecord {
            name: Arc::clone(&name),
            time,
            items: kernel.footprint.items,
            effective_bytes: kernel.footprint.effective_bytes,
            boundary,
        };
        st.elapsed += time.total;
        st.records.push(record.clone());
        if self.cfg.pricing_cache {
            st.price_cache.insert(
                key,
                CachedPrice {
                    footprint: kernel.footprint.clone(),
                    traits: kernel.traits,
                    nd_shape: kernel.nd_shape,
                    name: Arc::clone(&name),
                    exec,
                    time,
                    boundary,
                },
            );
        }
        let observer = st.observer.clone();
        drop(st);
        if let Some(obs) = observer {
            obs(&record);
        }
        (time, name)
    }

    /// Account a host→device (or device→host) transfer of `bytes`.
    /// Free on CPU platforms, priced at the interconnect bandwidth plus
    /// a fixed setup latency on GPUs — the cost SYCL buffers hide behind
    /// accessor creation.
    pub fn transfer(&self, bytes: f64) {
        let Some(bw) = self.platform.interconnect_bw else {
            return;
        };
        let t = 10.0e-6 + bytes / bw;
        let mut st = self.state.lock();
        st.elapsed += t;
        st.comm_time += t;
    }

    /// Account a halo exchange between the session's MPI ranks:
    /// `messages` point-to-point messages moving `bytes` in total.
    /// Single-rank sessions exchange nothing.
    pub fn exchange(&self, bytes: f64, messages: u64) {
        if self.ranks() <= 1 {
            return;
        }
        // Shared-memory MPI: latency per message plus a copy through the
        // memory system (in + out ⇒ half of STREAM).
        let t = messages as f64 * MSG_LATENCY + bytes / (0.5 * self.platform.mem.stream_bw);
        let mut st = self.state.lock();
        st.elapsed += t;
        st.comm_time += t;
    }

    /// Total simulated seconds so far.
    pub fn elapsed(&self) -> f64 {
        self.state.lock().elapsed
    }

    /// Simulated seconds spent in halo exchanges.
    pub fn comm_time(&self) -> f64 {
        self.state.lock().comm_time
    }

    /// Snapshot of all launch records.
    pub fn records(&self) -> Vec<LaunchRecord> {
        self.state.lock().records.clone()
    }

    /// Fraction of simulated time spent in boundary-style loops — the
    /// quantity the paper uses to expose launch overheads.
    pub fn boundary_fraction(&self) -> f64 {
        let st = self.state.lock();
        if st.elapsed <= 0.0 {
            return 0.0;
        }
        let b: f64 = st
            .records
            .iter()
            .filter(|r| r.boundary)
            .map(|r| r.time.total)
            .sum();
        b / st.elapsed
    }

    /// Aggregate (kernel name → total seconds, launches), sorted by cost.
    pub fn kernel_summary(&self) -> Vec<(String, f64, usize)> {
        use std::collections::HashMap;
        let st = self.state.lock();
        let mut agg: HashMap<&str, (f64, usize)> = HashMap::new();
        for r in &st.records {
            let e = agg.entry(&*r.name).or_insert((0.0, 0));
            e.0 += r.time.total;
            e.1 += 1;
        }
        let mut out: Vec<(String, f64, usize)> = agg
            .into_iter()
            .map(|(k, (t, n))| (k.to_owned(), t, n))
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        out
    }

    /// Weighted-average effective bandwidth over all launches
    /// (the OP2 §4.3 reporting rule), bytes/s.
    pub fn effective_bandwidth(&self) -> f64 {
        let st = self.state.lock();
        let bytes: f64 = st.records.iter().map(|r| r.effective_bytes).sum();
        if st.elapsed > 0.0 {
            bytes / st.elapsed
        } else {
            0.0
        }
    }

    /// Render a per-kernel cost breakdown (the paper's per-kernel
    /// profiling view: where the time goes, boundary flags, effective
    /// bandwidths).
    pub fn explain(&self) -> String {
        let total = self.elapsed().max(1e-30);
        let mut out = format!(
            "# {} | {} | {} | total {:.3} ms ({} launches, {:.1}% boundary)\n",
            self.platform.name,
            self.cfg.toolchain.label(),
            self.cfg.variant.label(),
            total * 1e3,
            self.records().len(),
            self.boundary_fraction() * 100.0
        );
        out.push_str("kernel                sec      %time  launches  GB/s(eff)\n");
        for (name, secs, count) in self.kernel_summary() {
            let bytes: f64 = {
                let st = self.state.lock();
                st.records
                    .iter()
                    .filter(|r| *r.name == *name)
                    .map(|r| r.effective_bytes)
                    .sum()
            };
            out.push_str(&format!(
                "{:20} {:9.5} {:6.1}% {:9} {:10.0}\n",
                name,
                secs,
                secs / total * 100.0,
                count,
                bytes / secs.max(1e-30) / 1e9
            ));
        }
        out
    }

    /// Reset the clock and ledger (e.g. after warm-up iterations).
    pub fn reset(&self) {
        let mut st = self.state.lock();
        st.elapsed = 0.0;
        st.comm_time = 0.0;
        st.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quirks::apps;

    fn session(p: PlatformId, tc: Toolchain) -> Session {
        Session::create(SessionConfig::new(p, tc).app("test")).unwrap()
    }

    #[test]
    fn launch_advances_the_clock_and_runs_the_body() {
        let s = session(PlatformId::A100, Toolchain::NativeCuda);
        let k = Kernel::streaming("copy", 1 << 20, 2.0 * 8.0 * (1 << 20) as f64, 0.0);
        let mut ran = false;
        s.launch(&k, || ran = true);
        assert!(ran);
        assert!(s.elapsed() > 0.0);
        assert_eq!(s.records().len(), 1);
    }

    #[test]
    fn quirky_configs_refuse_to_build() {
        let cfg = SessionConfig::new(PlatformId::Altra, Toolchain::Dpcpp).app(apps::RTM);
        assert!(Session::create(cfg).is_err());
        let cfg = SessionConfig::new(PlatformId::GenoaX, Toolchain::OpenSycl)
            .app(apps::CLOVERLEAF2D)
            .variant(SyclVariant::NdRange([64, 4, 1]));
        assert!(Session::create(cfg).is_err());
    }

    #[test]
    fn exchange_is_free_on_single_rank_sessions() {
        let gpu = session(PlatformId::A100, Toolchain::NativeCuda);
        gpu.exchange(1e9, 100);
        assert_eq!(gpu.comm_time(), 0.0);

        let cpu = session(PlatformId::Xeon8360Y, Toolchain::Mpi);
        cpu.exchange(1e9, 100);
        assert!(cpu.comm_time() > 0.0);
        assert_eq!(cpu.elapsed(), cpu.comm_time());
    }

    #[test]
    fn kernel_summary_aggregates_by_name() {
        let s = session(PlatformId::A100, Toolchain::NativeCuda);
        let k1 = Kernel::streaming("a", 1 << 16, 1e6, 0.0);
        let k2 = Kernel::streaming("b", 1 << 20, 1e8, 0.0);
        for _ in 0..3 {
            s.launch(&k1, || ());
        }
        s.launch(&k2, || ());
        let sum = s.kernel_summary();
        assert_eq!(sum.len(), 2);
        assert_eq!(sum[0].0, "b", "bigger kernel sorts first");
        assert_eq!(sum[1].2, 3);
    }

    #[test]
    fn boundary_fraction_reflects_tiny_loops() {
        let s = session(PlatformId::Mi250x, Toolchain::NativeHip);
        let big = Kernel::streaming("interior", 1 << 24, 3.0 * 8.0 * (1 << 24) as f64, 0.0);
        let tiny = Kernel::streaming("halo", 512, 2.0 * 8.0 * 512.0, 0.0);
        s.launch(&big, || ());
        for _ in 0..20 {
            s.launch(&tiny, || ());
        }
        let f = s.boundary_fraction();
        assert!(f > 0.0 && f < 1.0);
    }

    #[test]
    fn reset_clears_everything() {
        let s = session(PlatformId::A100, Toolchain::NativeCuda);
        s.launch(&Kernel::streaming("x", 1 << 16, 1e6, 0.0), || ());
        s.reset();
        assert_eq!(s.elapsed(), 0.0);
        assert!(s.records().is_empty());
    }

    #[test]
    fn effective_bandwidth_uses_the_op2_rule() {
        let s = session(PlatformId::A100, Toolchain::NativeCuda);
        let k = Kernel::streaming("triad", 1 << 26, 3.0 * 8.0 * (1 << 26) as f64, 0.0);
        s.launch(&k, || ());
        let bw = s.effective_bandwidth();
        assert!(bw > 0.5 * s.platform().mem.stream_bw);
        assert!(bw <= 1.01 * s.platform().mem.stream_bw);
    }

    #[test]
    fn explain_renders_the_ledger() {
        let s = session(PlatformId::A100, Toolchain::NativeCuda);
        s.launch(&Kernel::streaming("triad", 1 << 20, 3e7, 0.0), || ());
        s.launch(&Kernel::streaming("copy", 1 << 20, 2e7, 0.0), || ());
        let text = s.explain();
        assert!(text.contains("triad"));
        assert!(text.contains("copy"));
        assert!(text.contains("NVIDIA A100"));
        assert!(text.contains("2 launches"));
    }

    #[test]
    fn transfers_cost_on_gpus_and_are_free_on_cpus() {
        let gpu = session(PlatformId::A100, Toolchain::NativeCuda);
        gpu.transfer(1e9);
        // 1 GB over 25 GB/s = 40 ms.
        assert!(
            (gpu.elapsed() - 0.04).abs() / 0.04 < 0.01,
            "{}",
            gpu.elapsed()
        );

        let cpu = session(PlatformId::GenoaX, Toolchain::OpenMp);
        cpu.transfer(1e9);
        assert_eq!(cpu.elapsed(), 0.0);
    }

    #[test]
    fn mi250x_opensycl_atomics_are_downgraded() {
        let s = session(PlatformId::Mi250x, Toolchain::OpenSycl);
        assert_eq!(s.atomic_kind(), machine_model::AtomicKind::CasLoop);
        let s = session(PlatformId::Mi250x, Toolchain::Dpcpp);
        assert_eq!(s.atomic_kind(), machine_model::AtomicKind::NativeFp);
    }

    #[test]
    fn cached_launches_price_identically_to_cold_ones() {
        let cached = session(PlatformId::A100, Toolchain::NativeCuda);
        let uncached = Session::create(
            SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda)
                .app("test")
                .no_pricing_cache(),
        )
        .unwrap();
        let k1 = Kernel::streaming("triad", 1 << 20, 3e7, 2e6);
        let k2 = Kernel::streaming("copy", 1 << 18, 4e6, 0.0);
        for s in [&cached, &uncached] {
            for _ in 0..5 {
                s.launch(&k1, || ());
                s.launch(&k2, || ());
            }
        }
        assert_eq!(cached.elapsed().to_bits(), uncached.elapsed().to_bits());
        for (a, b) in cached.records().iter().zip(uncached.records().iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.time.total.to_bits(), b.time.total.to_bits());
        }
    }

    #[test]
    fn cache_distinguishes_same_name_different_shape() {
        // Two kernels sharing a name but differing in size must not
        // collide in the cache.
        let s = session(PlatformId::A100, Toolchain::NativeCuda);
        let big = Kernel::streaming("k", 1 << 24, 3.0 * 8.0 * (1 << 24) as f64, 0.0);
        let small = Kernel::streaming("k", 1 << 10, 3.0 * 8.0 * (1 << 10) as f64, 0.0);
        s.launch(&big, || ());
        s.launch(&small, || ());
        s.launch(&big, || ());
        let r = s.records();
        assert!(r[0].time.total > r[1].time.total * 10.0);
        assert_eq!(r[0].time.total.to_bits(), r[2].time.total.to_bits());
    }

    #[test]
    fn cache_survives_reset_and_interns_names() {
        let s = session(PlatformId::A100, Toolchain::NativeCuda);
        let k = Kernel::streaming("triad", 1 << 20, 3e7, 0.0);
        s.launch(&k, || ());
        let t0 = s.records()[0].time.total;
        s.reset();
        s.launch(&k, || ());
        s.launch(&k, || ());
        assert_eq!(s.records()[0].time.total.to_bits(), t0.to_bits());
        // All records of one kernel share a single interned name.
        let r = s.records();
        assert!(Arc::ptr_eq(&r[0].name, &r[1].name));
    }
}
