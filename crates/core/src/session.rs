//! Sessions: the simulated analogue of "compile the app with toolchain X
//! and run it on machine Y".
//!
//! A [`Session`] owns the simulated clock and a per-launch ledger. Every
//! [`Session::launch`] call is a thin eager composition of the four
//! launch layers in [`crate::launch`]: **record** builds a fingerprinted
//! [`LaunchNode`](crate::launch::LaunchNode) with no lock, **price**
//! walks the quirk/toolchain/platform models (served by the fingerprint
//! cache behind its own mutex), **execute** runs the kernel body
//! *functionally* so the application's numerics are real, and **commit**
//! appends one ledger entry under the ledger mutex. The batched
//! counterpart is [`crate::LaunchGraph`], which replays a recorded
//! sequence with a single ledger lock acquisition per replay.

use crate::error::Failure;
use crate::kernel::Kernel;
use crate::launch::commit::{exchange_cost, transfer_cost, Ledger};
use crate::launch::execute::LaunchSpan;
use crate::launch::price::{CommOp, PriceCache, PriceContext, Priced};
use crate::launch::record::{fingerprint, LaunchMeta};
use crate::launch::residency::{ResidencyTracker, TransferStats};
use crate::quirks;
use crate::toolchain::{Scheme, SyclVariant, Toolchain};
use machine_model::{KernelTime, Platform, PlatformId, TransferDir};
use parkit::sync::{Mutex, MutexGuard};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// One priced kernel launch. The name is interned (`Arc<str>`), so
/// records of repeat launches share one allocation.
#[derive(Debug, Clone)]
pub struct LaunchRecord {
    pub name: Arc<str>,
    pub time: KernelTime,
    pub items: u64,
    pub effective_bytes: f64,
    /// Small boundary-style loop (latency-dominated)?
    pub boundary: bool,
}

/// Everything needed to create a session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    pub platform: PlatformId,
    pub toolchain: Toolchain,
    pub variant: SyclVariant,
    pub app: String,
    pub scheme: Option<Scheme>,
    /// When set, kernel bodies are *not* executed — launches are priced
    /// analytically only. Used by the figure harness to run paper-sized
    /// problems (e.g. 1000³ Acoustic, 8M-vertex MG-CFD) whose footprints
    /// depend only on sizes; functional validation happens at reduced
    /// sizes in the test suite.
    pub dry_run: bool,
    /// Memoise launch pricing per kernel fingerprint (on by default).
    /// Disable to force a full toolchain-model walk on every launch —
    /// only useful for benchmarking the cache itself.
    pub pricing_cache: bool,
    /// Replay recorded [`crate::LaunchGraph`]s on the batched path (one
    /// ledger lock per replay; on by default). Disable to make
    /// `graph.replay` fall back to eager per-launch execution — the
    /// ledger is bit-identical either way, which is exactly what the
    /// equivalence tests compare.
    pub graph_replay: bool,
    /// Price transfer/exchange nodes through the interconnect model,
    /// residency-aware (on by default). Disable via
    /// [`SessionConfig::eager_transfers`] to restore the historic
    /// free-transfer semantics: transfers cost nothing on CPUs,
    /// single-rank exchanges cost nothing anywhere, and no residency
    /// elision happens — the escape hatch the priced-vs-free
    /// bit-identity tests compare against.
    pub transfer_pricing: bool,
    /// Host allocations are page-locked (on by default): transfers run
    /// at the link's pinned rate. Disable via
    /// [`SessionConfig::pageable_transfers`] to model ordinary pageable
    /// allocations staged through the driver bounce buffer.
    pub pinned_transfers: bool,
}

impl SessionConfig {
    /// Start a config; variant defaults to `Flat`, app to "unnamed".
    pub fn new(platform: PlatformId, toolchain: Toolchain) -> Self {
        SessionConfig {
            platform,
            toolchain,
            variant: SyclVariant::Flat,
            app: "unnamed".to_owned(),
            scheme: None,
            dry_run: false,
            pricing_cache: true,
            graph_replay: true,
            transfer_pricing: true,
            pinned_transfers: true,
        }
    }

    /// Set the SYCL formulation (ignored by native toolchains).
    pub fn variant(mut self, v: SyclVariant) -> Self {
        self.variant = v;
        self
    }

    /// Name the application (drives the quirk matrix).
    pub fn app(mut self, app: &str) -> Self {
        self.app = app.to_owned();
        self
    }

    /// Set the unstructured race-resolution scheme.
    pub fn scheme(mut self, s: Scheme) -> Self {
        self.scheme = Some(s);
        self
    }

    /// Price launches without executing kernel bodies (see `dry_run`).
    pub fn dry_run(mut self) -> Self {
        self.dry_run = true;
        self
    }

    /// Disable the launch-pricing cache (see `pricing_cache`).
    pub fn no_pricing_cache(mut self) -> Self {
        self.pricing_cache = false;
        self
    }

    /// Make graph replays take the eager per-launch path (see
    /// `graph_replay`).
    pub fn eager_launches(mut self) -> Self {
        self.graph_replay = false;
        self
    }

    /// Restore the historic free-transfer semantics (see
    /// `transfer_pricing`).
    pub fn eager_transfers(mut self) -> Self {
        self.transfer_pricing = false;
        self
    }

    /// Model pageable host allocations instead of pinned ones (see
    /// `pinned_transfers`).
    pub fn pageable_transfers(mut self) -> Self {
        self.pinned_transfers = false;
        self
    }
}

/// Callback invoked with every launch record as it is appended to the
/// ledger (after the ledger lock is released, so observers may call back
/// into the session).
pub type LaunchObserver = Arc<dyn Fn(&LaunchRecord) + Send + Sync>;

/// Callback invoked with a [`crate::GraphSummary`] each time a recorded
/// graph is replayed on the session (before the replay's own work).
/// Summaries repeat per replay — dedup on [`crate::GraphSummary::id`].
pub type GraphObserver = Arc<dyn Fn(&crate::graph::GraphSummary) + Send + Sync>;

/// A live (platform × toolchain × variant × app) execution context.
pub struct Session {
    platform: Platform,
    cfg: SessionConfig,
    atomic_kind: machine_model::AtomicKind,
    /// Commit-layer state (clock + ledger + observer), its own lock.
    ledger: Mutex<Ledger>,
    /// Price-layer state (fingerprint → memoised price), its own lock —
    /// a cold toolchain walk never blocks ledger readers.
    cache: Mutex<PriceCache>,
    /// Per-dat host/device residency: decides which transfers are real
    /// vs elided. Lock order when multiple are held: ledger → cache →
    /// residency (the batched commit path nests all three).
    residency: Mutex<ResidencyTracker>,
    /// Static-analysis observer for replayed graphs. The flag lets the
    /// replay hot path skip the lock when no observer is installed.
    graph_observer: Mutex<Option<GraphObserver>>,
    graph_observed: std::sync::atomic::AtomicBool,
}

/// Short-lived read view of the launch ledger, returned by
/// [`Session::records`]. Derefs to `[LaunchRecord]` without cloning.
/// The guard holds the ledger lock: drop it before calling any session
/// method that appends (launch/transfer/exchange/reset).
pub struct Records<'a>(MutexGuard<'a, Ledger>);

impl std::ops::Deref for Records<'_> {
    type Target = [LaunchRecord];

    fn deref(&self) -> &[LaunchRecord] {
        &self.0.records
    }
}

impl<'a> IntoIterator for &'a Records<'_> {
    type Item = &'a LaunchRecord;
    type IntoIter = std::slice::Iter<'a, LaunchRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl Session {
    /// Create a session, failing exactly when the paper reports the
    /// combination failed (unsupported target, miscompilation, ...).
    pub fn create(cfg: SessionConfig) -> Result<Session, Failure> {
        if let Some(fail) = quirks::check(
            &cfg.app,
            cfg.platform,
            cfg.toolchain,
            cfg.variant,
            cfg.scheme,
        ) {
            return Err(fail);
        }
        Ok(Session {
            platform: Platform::get(cfg.platform),
            atomic_kind: quirks::atomic_kind(cfg.platform, cfg.toolchain),
            cache: Mutex::new(PriceCache::new(cfg.pricing_cache)),
            residency: Mutex::new(ResidencyTracker::new()),
            ledger: Mutex::new(Ledger::new()),
            graph_observer: Mutex::new(None),
            graph_observed: std::sync::atomic::AtomicBool::new(false),
            cfg,
        })
    }

    /// The hardware model this session runs on.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// MPI ranks this toolchain decomposes the node into.
    pub fn ranks(&self) -> usize {
        self.cfg.toolchain.ranks(&self.platform)
    }

    /// The atomic path kernels get in this session.
    pub fn atomic_kind(&self) -> machine_model::AtomicKind {
        self.atomic_kind
    }

    /// Install (or clear) a per-launch observer. The callback sees each
    /// [`LaunchRecord`] right after it is appended to the ledger; it
    /// cannot change pricing, timing, or the ledger itself.
    pub fn set_launch_observer(&self, observer: Option<LaunchObserver>) {
        self.ledger.lock().observer = observer;
    }

    /// Install (or clear) a graph observer: it receives each replayed
    /// graph's [`crate::GraphSummary`] (once per replay — dedup on the
    /// summary id). Purely observational; replay behaviour, pricing and
    /// the ledger are unaffected.
    pub fn set_graph_observer(&self, observer: Option<GraphObserver>) {
        use std::sync::atomic::Ordering;
        self.graph_observed
            .store(observer.is_some(), Ordering::Release);
        *self.graph_observer.lock() = observer;
    }

    /// The installed graph observer, if any. One atomic load when none.
    pub(crate) fn graph_observer(&self) -> Option<GraphObserver> {
        use std::sync::atomic::Ordering;
        if !self.graph_observed.load(Ordering::Acquire) {
            return None;
        }
        self.graph_observer.lock().clone()
    }

    /// Price and record one kernel launch, then run `body` functionally.
    /// Returns whatever the body returns.
    pub fn launch<R>(&self, kernel: &Kernel, body: impl FnOnce() -> R) -> R {
        let (r, _) = self.launch_timed(kernel, body);
        r
    }

    /// True when kernel bodies should actually execute.
    pub fn executes(&self) -> bool {
        !self.cfg.dry_run
    }

    /// Start recording a launch graph. Record methods on the builder
    /// capture kernels and functional bodies; [`crate::LaunchGraph::replay`]
    /// then prices the whole sequence in one pass and commits it under a
    /// single ledger lock per replay.
    pub fn record(&self) -> crate::graph::GraphBuilder<'_> {
        crate::graph::GraphBuilder::new()
    }

    /// Like [`Session::launch`], also returning the simulated timing.
    /// When [`telemetry`] is enabled the launch records a `LaunchSpan`
    /// carrying the kernel name, iteration count, effective bytes and the
    /// simulated seconds, so traces can report achieved GB/s per kernel.
    pub fn launch_timed<R>(&self, kernel: &Kernel, body: impl FnOnce() -> R) -> (R, KernelTime) {
        let span = LaunchSpan::start();
        // record → price → commit → execute (the ledger entry lands
        // before the body runs, as it always has).
        let key = fingerprint(kernel);
        let priced = self.cache.lock().price(&self.price_context(), kernel, key);
        self.commit_one(&priced);
        // Flight events bracket the body so a crash mid-kernel leaves
        // the launch open on disk — that open is the post-mortem
        // attribution. Observes only; never feeds back into the ledger.
        let flight = telemetry::flight::recording();
        if flight {
            telemetry::flight::span_open(telemetry::SpanKind::Launch, &priced.name);
        }
        let r = body();
        if flight {
            telemetry::flight::span_close(telemetry::SpanKind::Launch, &priced.name);
        }
        span.finish(
            Arc::clone(&priced.name),
            kernel.footprint.items,
            kernel.footprint.effective_bytes,
            priced.time.total,
        );
        (r, priced.time)
    }

    /// The fixed pricing context of this session (layer 2 input).
    pub(crate) fn price_context(&self) -> PriceContext<'_> {
        PriceContext {
            platform: &self.platform,
            toolchain: self.cfg.toolchain,
            variant: self.cfg.variant,
            atomic_kind: self.atomic_kind,
        }
    }

    /// Lock the pricing cache (the graph replay path prices a whole
    /// graph under one acquisition).
    pub(crate) fn price_cache(&self) -> MutexGuard<'_, PriceCache> {
        self.cache.lock()
    }

    /// Lock the ledger (the graph replay path commits a whole graph
    /// under one acquisition).
    pub(crate) fn ledger(&self) -> MutexGuard<'_, Ledger> {
        self.ledger.lock()
    }

    /// Commit one priced launch and fire the observer after unlock.
    pub(crate) fn commit_one(&self, priced: &Priced) {
        let mut led = self.ledger.lock();
        let record = led.append(priced);
        let observer = led.observer.clone();
        drop(led);
        if let Some(obs) = observer {
            obs(&record);
        }
    }

    /// Account an anonymous host→device transfer of `bytes` (no dat
    /// list, so residency never elides it). Priced through the
    /// interconnect model; see [`Session::upload`]/[`Session::download`]
    /// for residency-aware staging.
    pub fn transfer(&self, bytes: f64) {
        self.transfer_with(bytes, &[], TransferDir::H2D);
    }

    /// Stage `bytes` of the given dats host→device. Elided (free) when
    /// every dat already has a valid device copy.
    pub fn upload(&self, bytes: f64, dats: &[u32]) {
        self.transfer_with(bytes, dats, TransferDir::H2D);
    }

    /// Read `bytes` of the given dats back device→host. Elided when
    /// every dat already has a valid host copy (nothing wrote them on
    /// the device since the last transfer).
    pub fn download(&self, bytes: f64, dats: &[u32]) {
        self.transfer_with(bytes, dats, TransferDir::D2H);
    }

    /// The shared eager transfer path (also used by graph replay's
    /// eager fallback, so both paths price and elide identically).
    pub(crate) fn transfer_with(&self, bytes: f64, dats: &[u32], dir: TransferDir) {
        let t = {
            let mut cache = self.cache.lock();
            let mut res = self.residency.lock();
            self.comm_transfer_time(bytes, dats, dir, &mut cache, &mut res)
        };
        if let Some(t) = t {
            self.ledger.lock().charge_comm(t);
        }
    }

    /// Price one transfer against caller-held price/residency locks.
    /// `None` means the transfer was elided (or legacy-free).
    pub(crate) fn comm_transfer_time(
        &self,
        bytes: f64,
        dats: &[u32],
        dir: TransferDir,
        cache: &mut PriceCache,
        res: &mut ResidencyTracker,
    ) -> Option<f64> {
        if !self.cfg.transfer_pricing {
            return transfer_cost(&self.platform, bytes);
        }
        if !res.apply_transfer(dir, dats) {
            return None;
        }
        cache.price_comm(
            &self.price_context(),
            CommOp::Transfer {
                dir,
                pinned: self.cfg.pinned_transfers,
            },
            bytes,
            0,
        )
    }

    /// Account a halo exchange between the session's MPI ranks:
    /// `messages` point-to-point messages moving `bytes` in total.
    /// Multi-rank sessions pay the MPI formula; a single-rank session
    /// with a nonzero halo pays the on-device pack/copy (free only
    /// under [`SessionConfig::eager_transfers`]).
    pub fn exchange(&self, bytes: f64, messages: u64) {
        let t = {
            let mut cache = self.cache.lock();
            self.comm_exchange_time(bytes, messages, &mut cache)
        };
        if let Some(t) = t {
            self.ledger.lock().charge_comm(t);
        }
    }

    /// Price one exchange against a caller-held price-cache lock.
    pub(crate) fn comm_exchange_time(
        &self,
        bytes: f64,
        messages: u64,
        cache: &mut PriceCache,
    ) -> Option<f64> {
        if !self.cfg.transfer_pricing {
            return exchange_cost(&self.platform, self.ranks(), bytes, messages);
        }
        cache.price_comm(
            &self.price_context(),
            CommOp::Exchange {
                ranks: self.ranks(),
                pinned: self.cfg.pinned_transfers,
            },
            bytes,
            messages,
        )
    }

    /// Apply a replayed launch's declared writes to the residency map
    /// (device writes invalidate the host copy). Called by both graph
    /// replay paths in recorded order; a no-op under
    /// [`SessionConfig::eager_transfers`].
    pub(crate) fn note_kernel_residency(&self, meta: &LaunchMeta) {
        if !self.cfg.transfer_pricing {
            return;
        }
        self.residency.lock().apply_launch(meta);
    }

    /// Lock the residency tracker (the batched commit path holds it for
    /// a whole graph). Lock order: ledger → cache → residency.
    pub(crate) fn residency_tracker(&self) -> MutexGuard<'_, ResidencyTracker> {
        self.residency.lock()
    }

    /// Real/elided transfer counts so far (elision requires transfer
    /// pricing and declared dat lists).
    pub fn transfer_stats(&self) -> TransferStats {
        self.residency.lock().stats()
    }

    /// Total simulated seconds so far.
    pub fn elapsed(&self) -> f64 {
        self.ledger.lock().elapsed
    }

    /// Simulated seconds spent in halo exchanges.
    pub fn comm_time(&self) -> f64 {
        self.ledger.lock().comm_time
    }

    /// Borrow the launch ledger without cloning it. The returned guard
    /// derefs to `[LaunchRecord]`; observers and the verifier no longer
    /// pay O(ledger) per call. Keep the guard short-lived.
    pub fn records(&self) -> Records<'_> {
        Records(self.ledger.lock())
    }

    /// Order-sensitive digest of the ledger: the clock, the comm time
    /// and every record's name/price/shape, f64s by bit pattern. Two
    /// sessions have equal digests iff their ledgers are bit-identical —
    /// the invariant the eager and replayed launch paths must share.
    pub fn ledger_digest(&self) -> u64 {
        let led = self.ledger.lock();
        let mut h = std::collections::hash_map::DefaultHasher::new();
        led.elapsed.to_bits().hash(&mut h);
        led.comm_time.to_bits().hash(&mut h);
        hash_records(&led.records, &mut h);
        h.finish()
    }

    /// Order-sensitive digest of the launch records only — the clock
    /// and comm time are excluded. Two sessions that differ *only* in
    /// how data movement is priced (transfer pricing on vs off, pinned
    /// vs pageable) must still agree here: pricing transfers changes
    /// the simulated clock, never what the kernels computed.
    pub fn launch_digest(&self) -> u64 {
        let led = self.ledger.lock();
        let mut h = std::collections::hash_map::DefaultHasher::new();
        hash_records(&led.records, &mut h);
        h.finish()
    }

    /// Fraction of simulated time spent in boundary-style loops — the
    /// quantity the paper uses to expose launch overheads.
    pub fn boundary_fraction(&self) -> f64 {
        let led = self.ledger.lock();
        if led.elapsed <= 0.0 {
            return 0.0;
        }
        let b: f64 = led
            .records
            .iter()
            .filter(|r| r.boundary)
            .map(|r| r.time.total)
            .sum();
        b / led.elapsed
    }

    /// Aggregate (kernel name → total seconds, launches), sorted by cost.
    pub fn kernel_summary(&self) -> Vec<(String, f64, usize)> {
        use std::collections::HashMap;
        let led = self.ledger.lock();
        let mut agg: HashMap<&str, (f64, usize)> = HashMap::new();
        for r in &led.records {
            let e = agg.entry(&*r.name).or_insert((0.0, 0));
            e.0 += r.time.total;
            e.1 += 1;
        }
        let mut out: Vec<(String, f64, usize)> = agg
            .into_iter()
            .map(|(k, (t, n))| (k.to_owned(), t, n))
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        out
    }

    /// Weighted-average effective bandwidth over all launches
    /// (the OP2 §4.3 reporting rule), bytes/s.
    pub fn effective_bandwidth(&self) -> f64 {
        let led = self.ledger.lock();
        let bytes: f64 = led.records.iter().map(|r| r.effective_bytes).sum();
        if led.elapsed > 0.0 {
            bytes / led.elapsed
        } else {
            0.0
        }
    }

    /// Render a per-kernel cost breakdown (the paper's per-kernel
    /// profiling view: where the time goes, boundary flags, effective
    /// bandwidths). One lock acquisition for the whole render.
    pub fn explain(&self) -> String {
        use std::collections::HashMap;
        let led = self.ledger.lock();
        let total = led.elapsed.max(1e-30);
        let boundary: f64 = led
            .records
            .iter()
            .filter(|r| r.boundary)
            .map(|r| r.time.total)
            .sum();
        let bfrac = if led.elapsed > 0.0 {
            boundary / led.elapsed
        } else {
            0.0
        };
        let mut out = format!(
            "# {} | {} | {} | total {:.3} ms ({} launches, {:.1}% boundary)\n",
            self.platform.name,
            self.cfg.toolchain.label(),
            self.cfg.variant.label(),
            total * 1e3,
            led.records.len(),
            bfrac * 100.0
        );
        out.push_str("kernel                sec      %time  launches  GB/s(eff)\n");
        let mut agg: HashMap<&str, (f64, usize, f64)> = HashMap::new();
        for r in &led.records {
            let e = agg.entry(&*r.name).or_insert((0.0, 0, 0.0));
            e.0 += r.time.total;
            e.1 += 1;
            e.2 += r.effective_bytes;
        }
        let mut rows: Vec<(&str, f64, usize, f64)> =
            agg.into_iter().map(|(k, (t, n, b))| (k, t, n, b)).collect();
        rows.sort_by(|a, b| b.1.total_cmp(&a.1));
        for (name, secs, count, bytes) in rows {
            out.push_str(&format!(
                "{:20} {:9.5} {:6.1}% {:9} {:10.0}\n",
                name,
                secs,
                secs / total * 100.0,
                count,
                bytes / secs.max(1e-30) / 1e9
            ));
        }
        out
    }

    /// Reset the clock and ledger (e.g. after warm-up iterations). The
    /// pricing cache survives: warm pricing is a property of the session
    /// config, not of the measured interval.
    pub fn reset(&self) {
        let mut led = self.ledger.lock();
        led.elapsed = 0.0;
        led.comm_time = 0.0;
        led.records.clear();
    }
}

/// Hash every launch record into `h`, f64s by bit pattern (the shared
/// body of [`Session::ledger_digest`] and [`Session::launch_digest`]).
fn hash_records(records: &[LaunchRecord], h: &mut impl Hasher) {
    records.len().hash(h);
    for r in records {
        r.name.as_bytes().hash(h);
        r.time.total.to_bits().hash(h);
        r.time.memory.to_bits().hash(h);
        r.time.compute.to_bits().hash(h);
        r.items.hash(h);
        r.effective_bytes.to_bits().hash(h);
        r.boundary.hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quirks::apps;

    fn session(p: PlatformId, tc: Toolchain) -> Session {
        Session::create(SessionConfig::new(p, tc).app("test")).unwrap()
    }

    #[test]
    fn launch_advances_the_clock_and_runs_the_body() {
        let s = session(PlatformId::A100, Toolchain::NativeCuda);
        let k = Kernel::streaming("copy", 1 << 20, 2.0 * 8.0 * (1 << 20) as f64, 0.0);
        let mut ran = false;
        s.launch(&k, || ran = true);
        assert!(ran);
        assert!(s.elapsed() > 0.0);
        assert_eq!(s.records().len(), 1);
    }

    #[test]
    fn quirky_configs_refuse_to_build() {
        let cfg = SessionConfig::new(PlatformId::Altra, Toolchain::Dpcpp).app(apps::RTM);
        assert!(Session::create(cfg).is_err());
        let cfg = SessionConfig::new(PlatformId::GenoaX, Toolchain::OpenSycl)
            .app(apps::CLOVERLEAF2D)
            .variant(SyclVariant::NdRange([64, 4, 1]));
        assert!(Session::create(cfg).is_err());
    }

    #[test]
    fn single_rank_exchanges_price_the_on_device_halo_copy() {
        let gpu = session(PlatformId::A100, Toolchain::NativeCuda);
        gpu.exchange(1e9, 100);
        // Priced as a D2D copy: fast, but no longer free.
        assert!(gpu.comm_time() > 0.0 && gpu.comm_time() < 0.01);

        let cpu = session(PlatformId::Xeon8360Y, Toolchain::Mpi);
        cpu.exchange(1e9, 100);
        assert!(cpu.comm_time() > 0.0);
        assert_eq!(cpu.elapsed(), cpu.comm_time());

        // The escape hatch restores the historic free semantics.
        let legacy = Session::create(
            SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda)
                .app("test")
                .eager_transfers(),
        )
        .unwrap();
        legacy.exchange(1e9, 100);
        assert_eq!(legacy.comm_time(), 0.0);
    }

    #[test]
    fn kernel_summary_aggregates_by_name() {
        let s = session(PlatformId::A100, Toolchain::NativeCuda);
        let k1 = Kernel::streaming("a", 1 << 16, 1e6, 0.0);
        let k2 = Kernel::streaming("b", 1 << 20, 1e8, 0.0);
        for _ in 0..3 {
            s.launch(&k1, || ());
        }
        s.launch(&k2, || ());
        let sum = s.kernel_summary();
        assert_eq!(sum.len(), 2);
        assert_eq!(sum[0].0, "b", "bigger kernel sorts first");
        assert_eq!(sum[1].2, 3);
    }

    #[test]
    fn boundary_fraction_reflects_tiny_loops() {
        let s = session(PlatformId::Mi250x, Toolchain::NativeHip);
        let big = Kernel::streaming("interior", 1 << 24, 3.0 * 8.0 * (1 << 24) as f64, 0.0);
        let tiny = Kernel::streaming("halo", 512, 2.0 * 8.0 * 512.0, 0.0);
        s.launch(&big, || ());
        for _ in 0..20 {
            s.launch(&tiny, || ());
        }
        let f = s.boundary_fraction();
        assert!(f > 0.0 && f < 1.0);
    }

    #[test]
    fn reset_clears_everything() {
        let s = session(PlatformId::A100, Toolchain::NativeCuda);
        s.launch(&Kernel::streaming("x", 1 << 16, 1e6, 0.0), || ());
        s.reset();
        assert_eq!(s.elapsed(), 0.0);
        assert!(s.records().is_empty());
    }

    #[test]
    fn effective_bandwidth_uses_the_op2_rule() {
        let s = session(PlatformId::A100, Toolchain::NativeCuda);
        let k = Kernel::streaming("triad", 1 << 26, 3.0 * 8.0 * (1 << 26) as f64, 0.0);
        s.launch(&k, || ());
        let bw = s.effective_bandwidth();
        assert!(bw > 0.5 * s.platform().mem.stream_bw);
        assert!(bw <= 1.01 * s.platform().mem.stream_bw);
    }

    #[test]
    fn explain_renders_the_ledger() {
        let s = session(PlatformId::A100, Toolchain::NativeCuda);
        s.launch(&Kernel::streaming("triad", 1 << 20, 3e7, 0.0), || ());
        s.launch(&Kernel::streaming("copy", 1 << 20, 2e7, 0.0), || ());
        let text = s.explain();
        assert!(text.contains("triad"));
        assert!(text.contains("copy"));
        assert!(text.contains("NVIDIA A100"));
        assert!(text.contains("2 launches"));
    }

    #[test]
    fn transfers_are_priced_through_the_interconnect_on_every_platform() {
        let gpu = session(PlatformId::A100, Toolchain::NativeCuda);
        gpu.transfer(1e9);
        // 1 GB over the pinned 25 GB/s H2D link = 40 ms.
        assert!(
            (gpu.elapsed() - 0.04).abs() / 0.04 < 0.01,
            "{}",
            gpu.elapsed()
        );

        // CPUs pay the in-package memcpy — small but nonzero.
        let cpu = session(PlatformId::GenoaX, Toolchain::OpenMp);
        cpu.transfer(1e9);
        assert!(cpu.elapsed() > 0.0 && cpu.elapsed() < gpu.elapsed());

        // Pageable allocations run at the bounce-buffer rate.
        let pageable = Session::create(
            SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda)
                .app("test")
                .pageable_transfers(),
        )
        .unwrap();
        pageable.transfer(1e9);
        assert!(pageable.elapsed() > 1.5 * gpu.elapsed());

        // The escape hatch restores the historic free-on-CPU semantics.
        let legacy = Session::create(
            SessionConfig::new(PlatformId::GenoaX, Toolchain::OpenMp)
                .app("test")
                .eager_transfers(),
        )
        .unwrap();
        legacy.transfer(1e9);
        assert_eq!(legacy.elapsed(), 0.0);
    }

    #[test]
    fn residency_elides_repeat_uploads_and_post_writeback_downloads() {
        let s = session(PlatformId::A100, Toolchain::NativeCuda);
        s.upload(1e8, &[1, 2]);
        let first = s.comm_time();
        assert!(first > 0.0);
        s.upload(1e8, &[1, 2]);
        assert_eq!(s.comm_time(), first, "second upload elided");
        // Host copy still valid (nothing wrote on device): free readback.
        s.download(1e8, &[1]);
        assert_eq!(s.comm_time(), first);
        assert_eq!(
            s.transfer_stats(),
            crate::TransferStats { real: 1, elided: 2 }
        );
        // Anonymous transfers always pay.
        s.transfer(1e8);
        assert!(s.comm_time() > first);
    }

    #[test]
    fn eager_transfers_disable_elision_and_match_legacy_costs() {
        let legacy = Session::create(
            SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda)
                .app("test")
                .eager_transfers(),
        )
        .unwrap();
        legacy.upload(1e9, &[1]);
        legacy.upload(1e9, &[1]);
        // Both paid, both at the legacy flat formula.
        let expect: f64 = 2.0 * (10.0e-6 + 1e9 / 25.0e9);
        assert_eq!(legacy.comm_time().to_bits(), expect.to_bits());
    }

    #[test]
    fn launch_digest_ignores_comm_time_but_ledger_digest_does_not() {
        let a = session(PlatformId::A100, Toolchain::NativeCuda);
        let b = session(PlatformId::A100, Toolchain::NativeCuda);
        let k = Kernel::streaming("x", 1 << 16, 1e6, 0.0);
        a.launch(&k, || ());
        b.launch(&k, || ());
        a.transfer(1e6);
        assert_eq!(a.launch_digest(), b.launch_digest());
        assert_ne!(a.ledger_digest(), b.ledger_digest());
    }

    #[test]
    fn mi250x_opensycl_atomics_are_downgraded() {
        let s = session(PlatformId::Mi250x, Toolchain::OpenSycl);
        assert_eq!(s.atomic_kind(), machine_model::AtomicKind::CasLoop);
        let s = session(PlatformId::Mi250x, Toolchain::Dpcpp);
        assert_eq!(s.atomic_kind(), machine_model::AtomicKind::NativeFp);
    }

    #[test]
    fn cached_launches_price_identically_to_cold_ones() {
        let cached = session(PlatformId::A100, Toolchain::NativeCuda);
        let uncached = Session::create(
            SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda)
                .app("test")
                .no_pricing_cache(),
        )
        .unwrap();
        let k1 = Kernel::streaming("triad", 1 << 20, 3e7, 2e6);
        let k2 = Kernel::streaming("copy", 1 << 18, 4e6, 0.0);
        for s in [&cached, &uncached] {
            for _ in 0..5 {
                s.launch(&k1, || ());
                s.launch(&k2, || ());
            }
        }
        assert_eq!(cached.elapsed().to_bits(), uncached.elapsed().to_bits());
        assert_eq!(cached.ledger_digest(), uncached.ledger_digest());
        for (a, b) in cached.records().iter().zip(uncached.records().iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.time.total.to_bits(), b.time.total.to_bits());
        }
    }

    #[test]
    fn cache_distinguishes_same_name_different_shape() {
        // Two kernels sharing a name but differing in size must not
        // collide in the cache.
        let s = session(PlatformId::A100, Toolchain::NativeCuda);
        let big = Kernel::streaming("k", 1 << 24, 3.0 * 8.0 * (1 << 24) as f64, 0.0);
        let small = Kernel::streaming("k", 1 << 10, 3.0 * 8.0 * (1 << 10) as f64, 0.0);
        s.launch(&big, || ());
        s.launch(&small, || ());
        s.launch(&big, || ());
        let r = s.records();
        assert!(r[0].time.total > r[1].time.total * 10.0);
        assert_eq!(r[0].time.total.to_bits(), r[2].time.total.to_bits());
    }

    #[test]
    fn cache_survives_reset_and_interns_names() {
        let s = session(PlatformId::A100, Toolchain::NativeCuda);
        let k = Kernel::streaming("triad", 1 << 20, 3e7, 0.0);
        s.launch(&k, || ());
        let t0 = s.records()[0].time.total;
        s.reset();
        s.launch(&k, || ());
        s.launch(&k, || ());
        assert_eq!(s.records()[0].time.total.to_bits(), t0.to_bits());
        // All records of one kernel share a single interned name.
        let r = s.records();
        assert!(Arc::ptr_eq(&r[0].name, &r[1].name));
    }

    #[test]
    fn records_guard_derefs_without_cloning() {
        let s = session(PlatformId::A100, Toolchain::NativeCuda);
        s.launch(&Kernel::streaming("a", 1 << 16, 1e6, 0.0), || ());
        s.launch(&Kernel::streaming("b", 1 << 16, 1e6, 0.0), || ());
        let r = s.records();
        assert_eq!(r.len(), 2);
        let names: Vec<&str> = r.into_iter().map(|rec| &*rec.name).collect();
        assert_eq!(names, ["a", "b"]);
        drop(r);
        // Guard released: the session is usable again.
        s.launch(&Kernel::streaming("c", 1 << 16, 1e6, 0.0), || ());
        assert_eq!(s.records().len(), 3);
    }

    #[test]
    fn ledger_digest_tracks_every_field() {
        let a = session(PlatformId::A100, Toolchain::NativeCuda);
        let b = session(PlatformId::A100, Toolchain::NativeCuda);
        assert_eq!(a.ledger_digest(), b.ledger_digest(), "empty ledgers agree");
        let k = Kernel::streaming("x", 1 << 16, 1e6, 0.0);
        a.launch(&k, || ());
        assert_ne!(a.ledger_digest(), b.ledger_digest());
        b.launch(&k, || ());
        assert_eq!(a.ledger_digest(), b.ledger_digest());
        a.transfer(1e6);
        assert_ne!(a.ledger_digest(), b.ledger_digest(), "comm time counts");
        b.transfer(1e6);
        assert_eq!(a.ledger_digest(), b.ledger_digest());
    }
}
