//! Sessions: the simulated analogue of "compile the app with toolchain X
//! and run it on machine Y".
//!
//! A [`Session`] owns the simulated clock and a per-launch ledger. Every
//! [`Session::launch`] call (i) checks the quirk matrix, (ii) asks the
//! toolchain model for an [`ExecProfile`], (iii) prices the launch on the
//! platform model, (iv) runs the kernel body *functionally* so the
//! application's numerics are real, and (v) records the result.

use crate::error::Failure;
use crate::kernel::Kernel;
use crate::quirks;
use crate::toolchain::{Scheme, SyclVariant, Toolchain};
use machine_model::{predict, KernelTime, Platform, PlatformId};
use parking_lot::Mutex;

/// Intra-node MPI message latency (shared-memory transport).
const MSG_LATENCY: f64 = 0.8e-6;

/// One priced kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchRecord {
    pub name: String,
    pub time: KernelTime,
    pub items: u64,
    pub effective_bytes: f64,
    /// Small boundary-style loop (latency-dominated)?
    pub boundary: bool,
}

/// Everything needed to create a session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    pub platform: PlatformId,
    pub toolchain: Toolchain,
    pub variant: SyclVariant,
    pub app: String,
    pub scheme: Option<Scheme>,
    /// When set, kernel bodies are *not* executed — launches are priced
    /// analytically only. Used by the figure harness to run paper-sized
    /// problems (e.g. 1000³ Acoustic, 8M-vertex MG-CFD) whose footprints
    /// depend only on sizes; functional validation happens at reduced
    /// sizes in the test suite.
    pub dry_run: bool,
}

impl SessionConfig {
    /// Start a config; variant defaults to `Flat`, app to "unnamed".
    pub fn new(platform: PlatformId, toolchain: Toolchain) -> Self {
        SessionConfig {
            platform,
            toolchain,
            variant: SyclVariant::Flat,
            app: "unnamed".to_owned(),
            scheme: None,
            dry_run: false,
        }
    }

    /// Set the SYCL formulation (ignored by native toolchains).
    pub fn variant(mut self, v: SyclVariant) -> Self {
        self.variant = v;
        self
    }

    /// Name the application (drives the quirk matrix).
    pub fn app(mut self, app: &str) -> Self {
        self.app = app.to_owned();
        self
    }

    /// Set the unstructured race-resolution scheme.
    pub fn scheme(mut self, s: Scheme) -> Self {
        self.scheme = Some(s);
        self
    }

    /// Price launches without executing kernel bodies (see `dry_run`).
    pub fn dry_run(mut self) -> Self {
        self.dry_run = true;
        self
    }
}

struct State {
    elapsed: f64,
    comm_time: f64,
    records: Vec<LaunchRecord>,
}

/// A live (platform × toolchain × variant × app) execution context.
pub struct Session {
    platform: Platform,
    cfg: SessionConfig,
    state: Mutex<State>,
}

impl Session {
    /// Create a session, failing exactly when the paper reports the
    /// combination failed (unsupported target, miscompilation, ...).
    pub fn create(cfg: SessionConfig) -> Result<Session, Failure> {
        if let Some(fail) = quirks::check(
            &cfg.app,
            cfg.platform,
            cfg.toolchain,
            cfg.variant,
            cfg.scheme,
        ) {
            return Err(fail);
        }
        Ok(Session {
            platform: Platform::get(cfg.platform),
            cfg,
            state: Mutex::new(State {
                elapsed: 0.0,
                comm_time: 0.0,
                records: Vec::new(),
            }),
        })
    }

    /// The hardware model this session runs on.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// MPI ranks this toolchain decomposes the node into.
    pub fn ranks(&self) -> usize {
        self.cfg.toolchain.ranks(&self.platform)
    }

    /// The atomic path kernels get in this session.
    pub fn atomic_kind(&self) -> machine_model::AtomicKind {
        quirks::atomic_kind(self.cfg.platform, self.cfg.toolchain)
    }

    /// Price and record one kernel launch, then run `body` functionally.
    /// Returns whatever the body returns.
    pub fn launch<R>(&self, kernel: &Kernel, body: impl FnOnce() -> R) -> R {
        let (r, _) = self.launch_timed(kernel, body);
        r
    }

    /// True when kernel bodies should actually execute.
    pub fn executes(&self) -> bool {
        !self.cfg.dry_run
    }

    /// Like [`Session::launch`], also returning the simulated timing.
    pub fn launch_timed<R>(&self, kernel: &Kernel, body: impl FnOnce() -> R) -> (R, KernelTime) {
        let exec = self
            .cfg
            .toolchain
            .exec_profile(&self.platform, self.cfg.variant, kernel);

        // Toolchain quirks can downgrade the atomic path (MI250X +
        // OpenSYCL loses the unsafe atomics).
        let mut footprint = kernel.footprint.clone();
        if let Some(a) = footprint.atomics.as_mut() {
            a.kind = self.atomic_kind();
        }

        let time = predict(&self.platform, &footprint, &exec);
        {
            let mut st = self.state.lock();
            st.elapsed += time.total;
            st.records.push(LaunchRecord {
                name: footprint.name.clone(),
                time,
                items: footprint.items,
                effective_bytes: footprint.effective_bytes,
                boundary: footprint.is_boundary(),
            });
        }
        (body(), time)
    }

    /// Account a host→device (or device→host) transfer of `bytes`.
    /// Free on CPU platforms, priced at the interconnect bandwidth plus
    /// a fixed setup latency on GPUs — the cost SYCL buffers hide behind
    /// accessor creation.
    pub fn transfer(&self, bytes: f64) {
        let Some(bw) = self.platform.interconnect_bw else {
            return;
        };
        let t = 10.0e-6 + bytes / bw;
        let mut st = self.state.lock();
        st.elapsed += t;
        st.comm_time += t;
    }

    /// Account a halo exchange between the session's MPI ranks:
    /// `messages` point-to-point messages moving `bytes` in total.
    /// Single-rank sessions exchange nothing.
    pub fn exchange(&self, bytes: f64, messages: u64) {
        if self.ranks() <= 1 {
            return;
        }
        // Shared-memory MPI: latency per message plus a copy through the
        // memory system (in + out ⇒ half of STREAM).
        let t = messages as f64 * MSG_LATENCY + bytes / (0.5 * self.platform.mem.stream_bw);
        let mut st = self.state.lock();
        st.elapsed += t;
        st.comm_time += t;
    }

    /// Total simulated seconds so far.
    pub fn elapsed(&self) -> f64 {
        self.state.lock().elapsed
    }

    /// Simulated seconds spent in halo exchanges.
    pub fn comm_time(&self) -> f64 {
        self.state.lock().comm_time
    }

    /// Snapshot of all launch records.
    pub fn records(&self) -> Vec<LaunchRecord> {
        self.state.lock().records.clone()
    }

    /// Fraction of simulated time spent in boundary-style loops — the
    /// quantity the paper uses to expose launch overheads.
    pub fn boundary_fraction(&self) -> f64 {
        let st = self.state.lock();
        if st.elapsed <= 0.0 {
            return 0.0;
        }
        let b: f64 = st
            .records
            .iter()
            .filter(|r| r.boundary)
            .map(|r| r.time.total)
            .sum();
        b / st.elapsed
    }

    /// Aggregate (kernel name → total seconds, launches), sorted by cost.
    pub fn kernel_summary(&self) -> Vec<(String, f64, usize)> {
        use std::collections::HashMap;
        let st = self.state.lock();
        let mut agg: HashMap<&str, (f64, usize)> = HashMap::new();
        for r in &st.records {
            let e = agg.entry(r.name.as_str()).or_insert((0.0, 0));
            e.0 += r.time.total;
            e.1 += 1;
        }
        let mut out: Vec<(String, f64, usize)> = agg
            .into_iter()
            .map(|(k, (t, n))| (k.to_owned(), t, n))
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        out
    }

    /// Weighted-average effective bandwidth over all launches
    /// (the OP2 §4.3 reporting rule), bytes/s.
    pub fn effective_bandwidth(&self) -> f64 {
        let st = self.state.lock();
        let bytes: f64 = st.records.iter().map(|r| r.effective_bytes).sum();
        if st.elapsed > 0.0 {
            bytes / st.elapsed
        } else {
            0.0
        }
    }

    /// Render a per-kernel cost breakdown (the paper's per-kernel
    /// profiling view: where the time goes, boundary flags, effective
    /// bandwidths).
    pub fn explain(&self) -> String {
        let total = self.elapsed().max(1e-30);
        let mut out = format!(
            "# {} | {} | {} | total {:.3} ms ({} launches, {:.1}% boundary)\n",
            self.platform.name,
            self.cfg.toolchain.label(),
            self.cfg.variant.label(),
            total * 1e3,
            self.records().len(),
            self.boundary_fraction() * 100.0
        );
        out.push_str("kernel                sec      %time  launches  GB/s(eff)\n");
        for (name, secs, count) in self.kernel_summary() {
            let bytes: f64 = {
                let st = self.state.lock();
                st.records
                    .iter()
                    .filter(|r| r.name == name)
                    .map(|r| r.effective_bytes)
                    .sum()
            };
            out.push_str(&format!(
                "{:20} {:9.5} {:6.1}% {:9} {:10.0}\n",
                name,
                secs,
                secs / total * 100.0,
                count,
                bytes / secs.max(1e-30) / 1e9
            ));
        }
        out
    }

    /// Reset the clock and ledger (e.g. after warm-up iterations).
    pub fn reset(&self) {
        let mut st = self.state.lock();
        st.elapsed = 0.0;
        st.comm_time = 0.0;
        st.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quirks::apps;

    fn session(p: PlatformId, tc: Toolchain) -> Session {
        Session::create(SessionConfig::new(p, tc).app("test")).unwrap()
    }

    #[test]
    fn launch_advances_the_clock_and_runs_the_body() {
        let s = session(PlatformId::A100, Toolchain::NativeCuda);
        let k = Kernel::streaming("copy", 1 << 20, 2.0 * 8.0 * (1 << 20) as f64, 0.0);
        let mut ran = false;
        s.launch(&k, || ran = true);
        assert!(ran);
        assert!(s.elapsed() > 0.0);
        assert_eq!(s.records().len(), 1);
    }

    #[test]
    fn quirky_configs_refuse_to_build() {
        let cfg = SessionConfig::new(PlatformId::Altra, Toolchain::Dpcpp).app(apps::RTM);
        assert!(Session::create(cfg).is_err());
        let cfg = SessionConfig::new(PlatformId::GenoaX, Toolchain::OpenSycl)
            .app(apps::CLOVERLEAF2D)
            .variant(SyclVariant::NdRange([64, 4, 1]));
        assert!(Session::create(cfg).is_err());
    }

    #[test]
    fn exchange_is_free_on_single_rank_sessions() {
        let gpu = session(PlatformId::A100, Toolchain::NativeCuda);
        gpu.exchange(1e9, 100);
        assert_eq!(gpu.comm_time(), 0.0);

        let cpu = session(PlatformId::Xeon8360Y, Toolchain::Mpi);
        cpu.exchange(1e9, 100);
        assert!(cpu.comm_time() > 0.0);
        assert_eq!(cpu.elapsed(), cpu.comm_time());
    }

    #[test]
    fn kernel_summary_aggregates_by_name() {
        let s = session(PlatformId::A100, Toolchain::NativeCuda);
        let k1 = Kernel::streaming("a", 1 << 16, 1e6, 0.0);
        let k2 = Kernel::streaming("b", 1 << 20, 1e8, 0.0);
        for _ in 0..3 {
            s.launch(&k1, || ());
        }
        s.launch(&k2, || ());
        let sum = s.kernel_summary();
        assert_eq!(sum.len(), 2);
        assert_eq!(sum[0].0, "b", "bigger kernel sorts first");
        assert_eq!(sum[1].2, 3);
    }

    #[test]
    fn boundary_fraction_reflects_tiny_loops() {
        let s = session(PlatformId::Mi250x, Toolchain::NativeHip);
        let big = Kernel::streaming("interior", 1 << 24, 3.0 * 8.0 * (1 << 24) as f64, 0.0);
        let tiny = Kernel::streaming("halo", 512, 2.0 * 8.0 * 512.0, 0.0);
        s.launch(&big, || ());
        for _ in 0..20 {
            s.launch(&tiny, || ());
        }
        let f = s.boundary_fraction();
        assert!(f > 0.0 && f < 1.0);
    }

    #[test]
    fn reset_clears_everything() {
        let s = session(PlatformId::A100, Toolchain::NativeCuda);
        s.launch(&Kernel::streaming("x", 1 << 16, 1e6, 0.0), || ());
        s.reset();
        assert_eq!(s.elapsed(), 0.0);
        assert!(s.records().is_empty());
    }

    #[test]
    fn effective_bandwidth_uses_the_op2_rule() {
        let s = session(PlatformId::A100, Toolchain::NativeCuda);
        let k = Kernel::streaming("triad", 1 << 26, 3.0 * 8.0 * (1 << 26) as f64, 0.0);
        s.launch(&k, || ());
        let bw = s.effective_bandwidth();
        assert!(bw > 0.5 * s.platform().mem.stream_bw);
        assert!(bw <= 1.01 * s.platform().mem.stream_bw);
    }

    #[test]
    fn explain_renders_the_ledger() {
        let s = session(PlatformId::A100, Toolchain::NativeCuda);
        s.launch(&Kernel::streaming("triad", 1 << 20, 3e7, 0.0), || ());
        s.launch(&Kernel::streaming("copy", 1 << 20, 2e7, 0.0), || ());
        let text = s.explain();
        assert!(text.contains("triad"));
        assert!(text.contains("copy"));
        assert!(text.contains("NVIDIA A100"));
        assert!(text.contains("2 launches"));
    }

    #[test]
    fn transfers_cost_on_gpus_and_are_free_on_cpus() {
        let gpu = session(PlatformId::A100, Toolchain::NativeCuda);
        gpu.transfer(1e9);
        // 1 GB over 25 GB/s = 40 ms.
        assert!((gpu.elapsed() - 0.04).abs() / 0.04 < 0.01, "{}", gpu.elapsed());

        let cpu = session(PlatformId::GenoaX, Toolchain::OpenMp);
        cpu.transfer(1e9);
        assert_eq!(cpu.elapsed(), 0.0);
    }

    #[test]
    fn mi250x_opensycl_atomics_are_downgraded() {
        let s = session(PlatformId::Mi250x, Toolchain::OpenSycl);
        assert_eq!(s.atomic_kind(), machine_model::AtomicKind::CasLoop);
        let s = session(PlatformId::Mi250x, Toolchain::Dpcpp);
        assert_eq!(s.atomic_kind(), machine_model::AtomicKind::NativeFp);
    }
}
