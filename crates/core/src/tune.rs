//! Work-group shape autotuning.
//!
//! The paper tunes one nd_range shape per application ("in our tests we
//! only tune for the best performing shape for the entire application",
//! §3). This module provides that search over the machine model, plus
//! the sweep data behind the `ablation_workgroup` bench target.

use crate::kernel::Kernel;
use crate::toolchain::{SyclVariant, Toolchain};
use machine_model::{predict, Platform, PlatformId};

/// The candidate shapes a tuner would try (powers of two up to 1024
/// work-items, 1-D to 3-D).
pub fn candidate_shapes() -> Vec<[usize; 3]> {
    let mut shapes = Vec::new();
    for &x in &[16usize, 32, 64, 128, 256, 512, 1024] {
        shapes.push([x, 1, 1]);
    }
    for &x in &[8usize, 16, 32, 64, 128, 256] {
        for &y in &[2usize, 4, 8, 16] {
            if x * y <= 1024 {
                shapes.push([x, y, 1]);
            }
        }
    }
    for &x in &[8usize, 16, 32] {
        for &y in &[4usize, 8] {
            for &z in &[2usize, 4] {
                if x * y * z <= 1024 {
                    shapes.push([x, y, z]);
                }
            }
        }
    }
    shapes
}

/// Predicted time of one kernel under an explicit shape.
pub fn time_with_shape(
    platform: &Platform,
    toolchain: Toolchain,
    kernel: &Kernel,
    shape: [usize; 3],
) -> f64 {
    let mut k = kernel.clone();
    k.nd_shape = Some(shape);
    let exec = toolchain.exec_profile(platform, SyclVariant::NdRange(shape), &k);
    predict(platform, &k.footprint, &exec).total
}

/// Sweep all candidate shapes; returns (shape, seconds) sorted fastest
/// first.
pub fn sweep(
    platform: PlatformId,
    toolchain: Toolchain,
    kernel: &Kernel,
) -> Vec<([usize; 3], f64)> {
    let platform = Platform::get(platform);
    let mut out: Vec<([usize; 3], f64)> = candidate_shapes()
        .into_iter()
        .map(|s| (s, time_with_shape(&platform, toolchain, kernel, s)))
        .collect();
    out.sort_by(|a, b| a.1.total_cmp(&b.1));
    out
}

/// The best shape for a kernel on a platform.
pub fn best_shape(platform: PlatformId, toolchain: Toolchain, kernel: &Kernel) -> [usize; 3] {
    sweep(platform, toolchain, kernel)[0].0
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine_model::{AccessProfile, KernelFootprint, Precision, StencilProfile};

    fn rtm_kernel() -> Kernel {
        let pts = 320usize.pow(3);
        Kernel::new(KernelFootprint {
            name: "wave_step".into(),
            items: pts as u64,
            effective_bytes: 4.0 * 4.0 * pts as f64,
            flops: 33.0 * pts as f64,
            transcendentals: 0.0,
            precision: Precision::F32,
            access: AccessProfile::Stencil(StencilProfile {
                domain: [320, 320, 320],
                radius: [4, 4, 4],
                dats_read: 2,
                dats_written: 1,
            }),
            atomics: None,
            reductions: 0,
        })
    }

    #[test]
    fn candidates_cover_1d_2d_3d() {
        let shapes = candidate_shapes();
        assert!(shapes.len() > 30);
        assert!(shapes.iter().any(|s| s[1] == 1 && s[2] == 1));
        assert!(shapes.iter().any(|s| s[1] > 1 && s[2] == 1));
        assert!(shapes.iter().any(|s| s[2] > 1));
        assert!(shapes.iter().all(|s| s.iter().product::<usize>() <= 1024));
    }

    #[test]
    fn tuned_shape_beats_the_worst_by_a_wide_margin() {
        let sweep = sweep(PlatformId::A100, Toolchain::Dpcpp, &rtm_kernel());
        let best = sweep.first().unwrap().1;
        let worst = sweep.last().unwrap().1;
        assert!(worst > 1.5 * best, "sweep range {best:.2e}..{worst:.2e}");
    }

    #[test]
    fn best_rtm_shape_is_compact_not_a_strip() {
        // Radius-4 stencils want squat tiles that fit the L1 share.
        let shape = best_shape(PlatformId::A100, Toolchain::Dpcpp, &rtm_kernel());
        assert!(shape[1] > 1, "best shape {shape:?} should tile y");
    }

    #[test]
    fn tuning_is_deterministic() {
        let a = best_shape(PlatformId::Mi250x, Toolchain::OpenSycl, &rtm_kernel());
        let b = best_shape(PlatformId::Mi250x, Toolchain::OpenSycl, &rtm_kernel());
        assert_eq!(a, b);
    }
}
