//! Seeded property test: batched submission leaves shard ledgers
//! **bitwise identical** to serial submission.
//!
//! Each shard thread executes a deterministic op script derived from
//! `SEED ^ shard` using the *batched* service APIs — `submit_batch`
//! coalescing several launches into one graph replay, and
//! `replay_batch` composing several recorded graphs into one commit —
//! while all shards contend on the lock-free admission queue. The same
//! script then runs serially (one eager launch / one replay at a time)
//! on a private session, and digest, record count and simulated clock
//! must match bit for bit. Any divergence in pricing, accumulation
//! order or observer-visible state under batching fails the test.

use sycl_sim::{Batch, Kernel, Service, ServiceConfig, Session, SessionConfig};
use sycl_sim::{PlatformId, Toolchain};

/// xorshift64* — deterministic, no external deps.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One scripted submission, pure data so the same script drives the
/// batched service path and the serial reference path.
enum Op {
    /// `submit_batch` of these kernels vs the same launches eagerly.
    SubmitBatch { kernels: Vec<(u64, f64)> },
    /// `replay_batch` of several recorded graphs vs serial replays.
    ReplayBatch { graphs: Vec<Vec<(u64, f64)>> },
    /// A plain single submit, mixed in between batches.
    Single { items: u64, bytes: f64 },
}

fn kernel(items: u64, bytes: f64, name: &str) -> Kernel {
    Kernel::streaming(name, items, bytes, 0.0)
}

fn script(seed: u64, steps: usize) -> Vec<Op> {
    let mut rng = Rng(seed | 1);
    let sized = |rng: &mut Rng| {
        let it = 1 << (10 + rng.below(7));
        (it, (it * 8) as f64)
    };
    (0..steps)
        .map(|_| match rng.below(4) {
            0 => {
                let (items, bytes) = sized(&mut rng);
                Op::Single { items, bytes }
            }
            1 => Op::ReplayBatch {
                graphs: (0..1 + rng.below(3))
                    .map(|_| (0..1 + rng.below(3)).map(|_| sized(&mut rng)).collect())
                    .collect(),
            },
            _ => Op::SubmitBatch {
                kernels: (0..1 + rng.below(8)).map(|_| sized(&mut rng)).collect(),
            },
        })
        .collect()
}

fn run_batched(svc: &Service, i: usize, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Single { items, bytes } => {
                let k = kernel(*items, *bytes, "bprop");
                svc.submit(i, &k, || ()).unwrap();
            }
            Op::SubmitBatch { kernels } => {
                let ks: Vec<Kernel> = kernels
                    .iter()
                    .map(|(it, b)| kernel(*it, *b, "bprop_b"))
                    .collect();
                let mut batch = Batch::new();
                for k in &ks {
                    batch.launch(k, |_| {});
                }
                svc.submit_batch(i, batch).unwrap();
            }
            Op::ReplayBatch { graphs } => {
                let ks: Vec<Vec<Kernel>> = graphs
                    .iter()
                    .map(|g| g.iter().map(|(it, b)| kernel(*it, *b, "bprop_g")).collect())
                    .collect();
                let built: Vec<_> = ks
                    .iter()
                    .map(|g| {
                        let mut b = svc.shard(i).record();
                        for k in g {
                            b.launch(k, |_| {});
                        }
                        b.finish()
                    })
                    .collect();
                let refs: Vec<_> = built.iter().collect();
                svc.replay_batch(i, &refs).unwrap();
            }
        }
    }
}

fn run_serial(s: &Session, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Single { items, bytes } => {
                s.launch(&kernel(*items, *bytes, "bprop"), || ());
            }
            Op::SubmitBatch { kernels } => {
                // The batched path coalesces; serially each launch goes
                // through the eager per-launch API, one at a time.
                for (it, b) in kernels {
                    s.launch(&kernel(*it, *b, "bprop_b"), || ());
                }
            }
            Op::ReplayBatch { graphs } => {
                for g in graphs {
                    let ks: Vec<Kernel> =
                        g.iter().map(|(it, b)| kernel(*it, *b, "bprop_g")).collect();
                    let mut builder = s.record();
                    for k in &ks {
                        builder.launch(k, |_| {});
                    }
                    builder.finish().replay(s);
                }
            }
        }
    }
}

fn cfg(_i: usize) -> SessionConfig {
    SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda).app("svc-batch")
}

#[test]
fn batched_shards_match_serial_sessions_bitwise() {
    const SEED: u64 = 0x5eed_cafe_0006;
    const SHARDS: usize = 4;
    const STEPS: usize = 40;

    let svc = Service::new(ServiceConfig::new(SHARDS, 2), cfg).unwrap();
    let scripts: Vec<Vec<Op>> = (0..SHARDS)
        .map(|i| script(SEED ^ (i as u64) << 32, STEPS))
        .collect();

    std::thread::scope(|scope| {
        for (i, ops) in scripts.iter().enumerate() {
            let svc = &svc;
            scope.spawn(move || run_batched(svc, i, ops));
        }
    });

    let mut digests = Vec::new();
    for (i, ops) in scripts.iter().enumerate() {
        let reference = Session::create(cfg(i)).unwrap();
        run_serial(&reference, ops);
        assert_eq!(
            svc.shard(i).ledger_digest(),
            reference.ledger_digest(),
            "shard {i}: batched ledger diverged from serial"
        );
        assert_eq!(
            svc.shard(i).records().len(),
            reference.records().len(),
            "shard {i}: record count diverged"
        );
        assert_eq!(
            svc.shard(i).elapsed().to_bits(),
            reference.elapsed().to_bits(),
            "shard {i}: simulated clock diverged"
        );
        digests.push(svc.shard(i).ledger_digest());
    }
    assert_eq!(svc.queue_depth(), 0, "admission drained back to zero");
    assert_eq!(svc.shed_count(), 0, "Block policy shed nothing");

    // Sanity: distinct scripts produce distinct ledgers.
    digests.sort_unstable();
    digests.dedup();
    assert_eq!(digests.len(), SHARDS, "shard scripts must be distinct");
}
