//! Telemetry must observe, never perturb: a session priced with
//! telemetry disabled is bit-identical to one priced with telemetry
//! never attached at all — and to one priced with telemetry *enabled*.
//! The subsystem reads the engine; nothing in the engine reads it back.

use std::sync::{Arc, Mutex, PoisonError};
use sycl_sim::{Kernel, LaunchRecord, PlatformId, Session, SessionConfig, Toolchain};
use telemetry::TelemetryConfig;

/// Telemetry state (enabled flag, counters, flight recorder) is
/// process-global; the tests in this file must not interleave.
static SERIAL: Mutex<()> = Mutex::new(());

/// A launch mix covering the cache paths: repeated hits on two hot
/// kernels, a boundary loop, and a reduction, on both cached and
/// uncached sessions.
fn run_workload() -> (Vec<LaunchRecord>, f64, Vec<LaunchRecord>, f64) {
    let cached =
        Session::create(SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda).app("equiv"))
            .unwrap();
    let uncached = Session::create(
        SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda)
            .app("equiv")
            .no_pricing_cache(),
    )
    .unwrap();
    for s in [&cached, &uncached] {
        let triad = Kernel::streaming("triad", 1 << 20, 3.0 * 8.0 * (1 << 20) as f64, 2e6);
        let copy = Kernel::streaming("copy", 1 << 18, 2.0 * 8.0 * (1 << 18) as f64, 0.0);
        let halo = Kernel::streaming("halo", 256, 2.0 * 8.0 * 256.0, 0.0);
        let mut reduce = Kernel::streaming("norm", 1 << 18, 8.0 * (1 << 18) as f64, 2e5);
        reduce.footprint.reductions = 1;
        for _ in 0..7 {
            s.launch(&triad, || ());
            s.launch(&copy, || ());
            s.launch(&halo, || ());
        }
        s.launch(&reduce, || ());
        s.transfer(1e8);
        s.exchange(1e6, 8);
    }
    // One guard per statement: a `Records` guard held across `elapsed()`
    // would deadlock on the ledger lock.
    let cached_records = cached.records().to_vec();
    let uncached_records = uncached.records().to_vec();
    (
        cached_records,
        cached.elapsed(),
        uncached_records,
        uncached.elapsed(),
    )
}

fn assert_bit_identical(
    (ar, ae, aur, aue): &(Vec<LaunchRecord>, f64, Vec<LaunchRecord>, f64),
    (br, be, bur, bue): &(Vec<LaunchRecord>, f64, Vec<LaunchRecord>, f64),
    label: &str,
) {
    assert_eq!(ae.to_bits(), be.to_bits(), "{label}: cached elapsed");
    assert_eq!(aue.to_bits(), bue.to_bits(), "{label}: uncached elapsed");
    for (x, y) in [(ar, br), (aur, bur)] {
        assert_eq!(x.len(), y.len(), "{label}: record count");
        for (a, b) in x.iter().zip(y.iter()) {
            assert_eq!(a.name, b.name, "{label}");
            assert_eq!(a.items, b.items, "{label}: {}", a.name);
            assert_eq!(
                a.time.total.to_bits(),
                b.time.total.to_bits(),
                "{label}: {}",
                a.name
            );
            assert_eq!(
                a.effective_bytes.to_bits(),
                b.effective_bytes.to_bits(),
                "{label}: {}",
                a.name
            );
            assert_eq!(a.boundary, b.boundary, "{label}: {}", a.name);
        }
    }
}

#[test]
fn disabled_and_enabled_telemetry_leave_ledgers_bit_identical() {
    let _serial = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    // 1. Telemetry never attached: the process default (no install).
    let never = run_workload();

    // 2. Explicitly disabled.
    TelemetryConfig::disabled().install();
    let disabled = run_workload();

    // 3. Enabled, recording every span and counter.
    TelemetryConfig::enabled().install();
    let counters_before = telemetry::counters().snapshot();
    let enabled = run_workload();
    let delta = telemetry::counters().snapshot().since(&counters_before);
    TelemetryConfig::disabled().install();
    let events = telemetry::flush();

    assert_bit_identical(&never, &disabled, "never-attached vs disabled");
    assert_bit_identical(&never, &enabled, "never-attached vs enabled");

    // The enabled run really was observed: one launch span per ledger
    // record, cache hits for the repeat launches, and interned names.
    let per_session = never.0.len() as u64;
    assert_eq!(delta.launches, 2 * per_session);
    assert!(delta.pricing_cache_hits >= 7, "{delta:?}");
    assert_eq!(
        events
            .iter()
            .filter(|e| e.kind == telemetry::SpanKind::Launch)
            .count() as u64,
        delta.launches
    );

    // Launch records still intern names per session (telemetry holds
    // clones, it does not steal the session's Arcs).
    let triads: Vec<&Arc<str>> = enabled
        .0
        .iter()
        .filter(|r| &*r.name == "triad")
        .map(|r| &r.name)
        .collect();
    assert!(triads.windows(2).all(|w| Arc::ptr_eq(w[0], w[1])));

    // 4. Enabled with the metrics registry actively recording: the
    // histogram/counter layer above telemetry must be just as invisible
    // to the engine as the span layer itself.
    TelemetryConfig::enabled().install();
    metrics::registry().flush(); // drop anything earlier tests shed
    let with_metrics = run_workload();
    metrics::registry().record_labelled("equiv.sim_secs", "triad", with_metrics.1);
    metrics::registry().add("equiv.runs", "workload", 1);
    TelemetryConfig::disabled().install();
    let metric_events = telemetry::flush();
    metrics::ingest_events(&metric_events);
    let snap = metrics::registry().flush();

    assert_bit_identical(&never, &with_metrics, "never-attached vs metrics-enabled");

    // The registry really observed the run: per-kernel wall histograms
    // from the ingested spans plus the directly recorded series.
    let triad_wall = snap
        .hist("launch.wall_secs", "triad")
        .expect("triad launch histogram");
    assert_eq!(triad_wall.count(), 2 * 7); // two sessions × seven launches
    assert!(snap.hist("equiv.sim_secs", "triad").is_some());
    assert_eq!(snap.counter("equiv.runs", "workload"), 1);
}

#[test]
fn flight_recorder_leaves_ledgers_bit_identical() {
    let _serial = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    // Baseline: no observation of any kind.
    let never = run_workload();

    // Same workload with the flight recorder writing every launch to
    // disk (the span rings stay off — flight is an independent switch).
    let path = std::env::temp_dir().join(format!("flight-equiv-{}.bin", std::process::id()));
    telemetry::flight::start(&path, 0, "equiv").unwrap();
    telemetry::flight::span_open(telemetry::SpanKind::Unit, "equiv-unit");
    let with_flight = run_workload();
    telemetry::flight::span_close(telemetry::SpanKind::Unit, "equiv-unit");
    telemetry::flight::stop();

    assert_bit_identical(&never, &with_flight, "never-attached vs flight-recorded");

    // The recording really observed the run: one open/close pair per
    // ledger record across both sessions, nothing left open.
    let rec = telemetry::FlightRecording::read(&path).unwrap();
    assert!(!rec.torn, "clean stop must not leave a torn tail");
    let opens = rec
        .events
        .iter()
        .filter(|e| {
            matches!(
                e,
                telemetry::FlightEvent::SpanOpen {
                    kind: telemetry::SpanKind::Launch,
                    ..
                }
            )
        })
        .count();
    let per_session = never.0.len();
    assert_eq!(opens, 2 * per_session);
    assert!(rec.open_spans().is_empty());
    std::fs::remove_file(&path).ok();
}
