//! Seeded property test: interleaved shard sessions never corrupt each
//! other's ledgers.
//!
//! Each shard is driven by its own thread executing a deterministic op
//! script derived from `SEED ^ shard`, while all shards contend on the
//! one process-wide parkit pool and the service's admission semaphore.
//! Afterwards every shard's ledger must be bit-identical (digest,
//! record count, simulated elapsed time) to the same script run
//! serially on a private session — any cross-shard leakage of records,
//! pricing state, or clock advances fails the comparison.

use sycl_sim::{Kernel, Service, ServiceConfig, Session, SessionConfig};
use sycl_sim::{PlatformId, Toolchain};

/// xorshift64* — deterministic, no external deps.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One scripted submission: either a single eager launch or a recorded
/// graph replayed a few times. Pure data so the same script can drive a
/// service shard and a reference session.
enum Op {
    Launch {
        items: u64,
        bytes: f64,
    },
    Replay {
        kernels: Vec<(u64, f64)>,
        times: usize,
    },
}

fn script(seed: u64, steps: usize) -> Vec<Op> {
    let mut rng = Rng(seed | 1);
    (0..steps)
        .map(|_| {
            let items = 1 << (10 + rng.below(8));
            let bytes = (items * 8) as f64;
            if rng.below(4) < 3 {
                Op::Launch { items, bytes }
            } else {
                let kernels = (0..1 + rng.below(3))
                    .map(|_| {
                        let it = 1 << (10 + rng.below(6));
                        (it, (it * 8) as f64)
                    })
                    .collect();
                Op::Replay {
                    kernels,
                    times: 1 + rng.below(3) as usize,
                }
            }
        })
        .collect()
}

fn run_on_shard(svc: &Service, i: usize, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Launch { items, bytes } => {
                let k = Kernel::streaming("prop", *items, *bytes, 0.0);
                svc.submit(i, &k, || ()).unwrap();
            }
            Op::Replay { kernels, times } => {
                let ks: Vec<Kernel> = kernels
                    .iter()
                    .map(|(it, b)| Kernel::streaming("prop_g", *it, *b, 0.0))
                    .collect();
                let mut g = svc.shard(i).record();
                for k in &ks {
                    g.launch(k, |_| {});
                }
                let g = g.finish();
                for _ in 0..*times {
                    svc.replay(i, &g).unwrap();
                }
            }
        }
    }
}

fn run_on_session(s: &Session, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Launch { items, bytes } => {
                let k = Kernel::streaming("prop", *items, *bytes, 0.0);
                s.launch(&k, || ());
            }
            Op::Replay { kernels, times } => {
                let ks: Vec<Kernel> = kernels
                    .iter()
                    .map(|(it, b)| Kernel::streaming("prop_g", *it, *b, 0.0))
                    .collect();
                let mut g = s.record();
                for k in &ks {
                    g.launch(k, |_| {});
                }
                let g = g.finish();
                for _ in 0..*times {
                    g.replay(s);
                }
            }
        }
    }
}

fn cfg(_i: usize) -> SessionConfig {
    SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda).app("svc-prop")
}

#[test]
fn interleaved_shards_match_serial_sessions_bitwise() {
    const SEED: u64 = 0x5eed_cafe_0001;
    const SHARDS: usize = 4;
    const STEPS: usize = 60;

    let svc = Service::new(ServiceConfig::new(SHARDS, 2), cfg).unwrap();
    let scripts: Vec<Vec<Op>> = (0..SHARDS)
        .map(|i| script(SEED ^ (i as u64) << 32, STEPS))
        .collect();

    std::thread::scope(|scope| {
        for (i, ops) in scripts.iter().enumerate() {
            let svc = &svc;
            scope.spawn(move || run_on_shard(svc, i, ops));
        }
    });

    let mut digests = Vec::new();
    for (i, ops) in scripts.iter().enumerate() {
        let reference = Session::create(cfg(i)).unwrap();
        run_on_session(&reference, ops);
        assert_eq!(
            svc.shard(i).ledger_digest(),
            reference.ledger_digest(),
            "shard {i}: ledger corrupted by interleaving"
        );
        let got = svc.shard(i).records().len();
        let want = reference.records().len();
        assert_eq!(got, want, "shard {i}: record count diverged");
        assert_eq!(
            svc.shard(i).elapsed().to_bits(),
            reference.elapsed().to_bits(),
            "shard {i}: simulated clock diverged"
        );
        digests.push(svc.shard(i).ledger_digest());
    }
    assert_eq!(svc.queue_depth(), 0);

    // Sanity: the scripts genuinely differ per shard, so identical
    // digests across shards would mean the digest is insensitive.
    digests.sort_unstable();
    digests.dedup();
    assert_eq!(digests.len(), SHARDS, "shard scripts must be distinct");
}
