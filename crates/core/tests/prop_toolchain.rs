//! Property-style tests of the toolchain models and session machinery,
//! driven by deterministic parameter sweeps (no external property-test
//! framework: the workspace builds offline with the standard library).

use machine_model::{AccessProfile, KernelFootprint, Precision, StencilProfile};
use sycl_sim::{
    Kernel, KernelTraits, Platform, PlatformId, Session, SessionConfig, SyclVariant, Toolchain,
};

const ALL_PLATFORMS: [PlatformId; 6] = [
    PlatformId::A100,
    PlatformId::Mi250x,
    PlatformId::Max1100,
    PlatformId::Xeon8360Y,
    PlatformId::GenoaX,
    PlatformId::Altra,
];

const ALL_TOOLCHAINS: [Toolchain; 8] = [
    Toolchain::NativeCuda,
    Toolchain::NativeHip,
    Toolchain::OmpOffload,
    Toolchain::Mpi,
    Toolchain::MpiOpenMp,
    Toolchain::OpenMp,
    Toolchain::Dpcpp,
    Toolchain::OpenSycl,
];

fn stencil_kernel(nx: usize, ny: usize, nz: usize, radius: usize) -> Kernel {
    let pts = nx * ny * nz;
    Kernel::new(KernelFootprint {
        name: "prop".into(),
        items: pts as u64,
        effective_bytes: 24.0 * pts as f64,
        flops: 10.0 * pts as f64,
        transcendentals: 0.0,
        precision: Precision::F64,
        access: AccessProfile::Stencil(StencilProfile {
            domain: [nx, ny, nz],
            radius: [radius, radius, if nz > 1 { radius } else { 0 }],
            dats_read: 2,
            dats_written: 1,
        }),
        atomics: None,
        reductions: 0,
    })
}

/// Deterministic xorshift64* stream for test inputs.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn int(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo)
    }

    fn flag(&mut self) -> bool {
        self.next_u64().is_multiple_of(2)
    }
}

#[test]
fn workgroups_fit_the_domain() {
    let mut rng = XorShift::new(7);
    for _ in 0..64 {
        let nx = rng.int(1, 2048);
        let ny = rng.int(1, 512);
        let nz = rng.int(1, 64);
        let radius = rng.int(0, 5);
        let tc = ALL_TOOLCHAINS[rng.int(0, 8)];
        let nd = rng.flag();
        let sx = rng.int(1, 2048);
        let sy = rng.int(1, 64);
        let kernel = stencil_kernel(nx, ny, nz, radius);
        let variant = if nd {
            SyclVariant::NdRange([sx, sy, 1])
        } else {
            SyclVariant::Flat
        };
        for pid in ALL_PLATFORMS {
            let p = Platform::get(pid);
            let wg = tc.workgroup(&p, variant, &kernel);
            assert!(wg[0] >= 1 && wg[1] >= 1 && wg[2] >= 1);
            if pid.is_gpu() {
                // GPU work-groups are sub-tiles of the iteration domain.
                assert!(wg[0] <= nx.max(1), "{wg:?} vs domain x {nx}");
                assert!(wg[1] <= ny.max(1));
                assert!(wg[2] <= nz.max(1));
            } else {
                // CPU "work-groups" are linear per-thread chunks.
                assert_eq!(wg[1], 1);
                assert_eq!(wg[2], 1);
                assert!(wg[0] <= 4096);
            }
        }
    }
}

#[test]
fn vector_efficiency_bounds() {
    for tc in ALL_TOOLCHAINS {
        // All 16 trait combinations, exhaustively.
        for bits in 0u32..16 {
            let mut kernel = stencil_kernel(64, 64, 64, 1);
            kernel.traits = KernelTraits {
                stride_one_inner: bits & 1 != 0,
                indirect_writes: bits & 2 != 0,
                complex_body: bits & 4 != 0,
                hard_on_neon: bits & 8 != 0,
            };
            for pid in ALL_PLATFORMS {
                let p = Platform::get(pid);
                let eff = tc.vector_efficiency(&p, &kernel);
                if pid.is_gpu() {
                    assert_eq!(eff, 1.0);
                } else {
                    assert!((0.01..=1.2).contains(&eff), "{pid:?} {tc:?}: {eff}");
                }
            }
        }
    }
}

#[test]
fn session_creation_is_total() {
    // Exhaustive: 6 platforms × 8 toolchains × 2 variants × 7 apps × 4 schemes.
    for pid in ALL_PLATFORMS {
        for tc in ALL_TOOLCHAINS {
            for nd in [false, true] {
                for app in sycl_sim::quirks::apps::ALL {
                    for scheme_i in 0..4 {
                        let mut cfg = SessionConfig::new(pid, tc)
                            .variant(if nd {
                                SyclVariant::NdRange([64, 4, 1])
                            } else {
                                SyclVariant::Flat
                            })
                            .app(app);
                        if scheme_i < 3 {
                            cfg = cfg.scheme(sycl_sim::Scheme::all()[scheme_i]);
                        }
                        match Session::create(cfg) {
                            Ok(s) => assert!(s.elapsed() == 0.0),
                            Err(f) => assert!(!f.detail.is_empty()),
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn launches_keep_the_ledger_consistent() {
    let mut rng = XorShift::new(37);
    for _ in 0..32 {
        let n_kernels = rng.int(1, 12);
        let sizes: Vec<u64> = (0..rng.int(1, 12))
            .map(|_| rng.int(1, 1 << 22) as u64)
            .collect();
        let s = Session::create(SessionConfig::new(PlatformId::A100, Toolchain::Dpcpp).app("prop"))
            .unwrap();
        let mut expect_total = 0.0;
        for &size in sizes.iter().take(n_kernels) {
            let k = Kernel::streaming("k", size, 24.0 * size as f64, 0.0);
            let (_, t) = s.launch_timed(&k, || ());
            expect_total += t.total;
        }
        assert!((s.elapsed() - expect_total).abs() < 1e-12);
        assert_eq!(s.records().len(), n_kernels.min(sizes.len()));
        let bf = s.boundary_fraction();
        assert!((0.0..=1.0).contains(&bf));
    }
}

#[test]
fn backend_matches_platform_kind() {
    for pid in ALL_PLATFORMS {
        for tc in ALL_TOOLCHAINS {
            if tc.supports(pid) {
                let backend = tc.backend(pid);
                assert_eq!(
                    backend.is_host(),
                    !pid.is_gpu(),
                    "{tc:?} on {pid:?} -> {backend:?}"
                );
            }
        }
    }
}
