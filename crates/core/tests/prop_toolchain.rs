//! Property tests of the toolchain models and session machinery.

use machine_model::{AccessProfile, KernelFootprint, Precision, StencilProfile};
use proptest::prelude::*;
use sycl_sim::{
    Kernel, KernelTraits, Platform, PlatformId, Session, SessionConfig, SyclVariant, Toolchain,
};

const ALL_PLATFORMS: [PlatformId; 6] = [
    PlatformId::A100,
    PlatformId::Mi250x,
    PlatformId::Max1100,
    PlatformId::Xeon8360Y,
    PlatformId::GenoaX,
    PlatformId::Altra,
];

const ALL_TOOLCHAINS: [Toolchain; 8] = [
    Toolchain::NativeCuda,
    Toolchain::NativeHip,
    Toolchain::OmpOffload,
    Toolchain::Mpi,
    Toolchain::MpiOpenMp,
    Toolchain::OpenMp,
    Toolchain::Dpcpp,
    Toolchain::OpenSycl,
];

fn stencil_kernel(nx: usize, ny: usize, nz: usize, radius: usize) -> Kernel {
    let pts = nx * ny * nz;
    Kernel::new(KernelFootprint {
        name: "prop".into(),
        items: pts as u64,
        effective_bytes: 24.0 * pts as f64,
        flops: 10.0 * pts as f64,
        transcendentals: 0.0,
        precision: Precision::F64,
        access: AccessProfile::Stencil(StencilProfile {
            domain: [nx, ny, nz],
            radius: [radius, radius, if nz > 1 { radius } else { 0 }],
            dats_read: 2,
            dats_written: 1,
        }),
        atomics: None,
        reductions: 0,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Work-group shapes never exceed the kernel's domain and are
    /// always at least one item.
    #[test]
    fn workgroups_fit_the_domain(
        nx in 1usize..2048, ny in 1usize..512, nz in 1usize..64,
        radius in 0usize..5,
        tci in 0usize..8,
        nd in proptest::bool::ANY,
        sx in 1usize..2048, sy in 1usize..64,
    ) {
        let tc = ALL_TOOLCHAINS[tci];
        let kernel = stencil_kernel(nx, ny, nz, radius);
        let variant = if nd {
            SyclVariant::NdRange([sx, sy, 1])
        } else {
            SyclVariant::Flat
        };
        for pid in ALL_PLATFORMS {
            let p = Platform::get(pid);
            let wg = tc.workgroup(&p, variant, &kernel);
            prop_assert!(wg[0] >= 1 && wg[1] >= 1 && wg[2] >= 1);
            if pid.is_gpu() {
                // GPU work-groups are sub-tiles of the iteration domain.
                prop_assert!(wg[0] <= nx.max(1), "{wg:?} vs domain x {nx}");
                prop_assert!(wg[1] <= ny.max(1));
                prop_assert!(wg[2] <= nz.max(1));
            } else {
                // CPU "work-groups" are linear per-thread chunks.
                prop_assert_eq!(wg[1], 1);
                prop_assert_eq!(wg[2], 1);
                prop_assert!(wg[0] <= 4096);
            }
        }
    }

    /// Vector efficiency is in a sane range on every platform and is
    /// always 1.0 on GPUs.
    #[test]
    fn vector_efficiency_bounds(
        tci in 0usize..8,
        stride_one in proptest::bool::ANY,
        indirect in proptest::bool::ANY,
        complex in proptest::bool::ANY,
        neon_hard in proptest::bool::ANY,
    ) {
        let tc = ALL_TOOLCHAINS[tci];
        let mut kernel = stencil_kernel(64, 64, 64, 1);
        kernel.traits = KernelTraits {
            stride_one_inner: stride_one,
            indirect_writes: indirect,
            complex_body: complex,
            hard_on_neon: neon_hard,
        };
        for pid in ALL_PLATFORMS {
            let p = Platform::get(pid);
            let eff = tc.vector_efficiency(&p, &kernel);
            if pid.is_gpu() {
                prop_assert_eq!(eff, 1.0);
            } else {
                prop_assert!((0.01..=1.2).contains(&eff), "{pid:?} {tc:?}: {eff}");
            }
        }
    }

    /// Session creation is total: it either builds or returns a typed
    /// failure — never panics — for any (platform, toolchain, variant,
    /// app, scheme) combination.
    #[test]
    fn session_creation_is_total(
        pi in 0usize..6,
        tci in 0usize..8,
        nd in proptest::bool::ANY,
        app_i in 0usize..7,
        scheme_i in 0usize..4,
    ) {
        let app = sycl_sim::quirks::apps::ALL[app_i];
        let mut cfg = SessionConfig::new(ALL_PLATFORMS[pi], ALL_TOOLCHAINS[tci])
            .variant(if nd {
                SyclVariant::NdRange([64, 4, 1])
            } else {
                SyclVariant::Flat
            })
            .app(app);
        if scheme_i < 3 {
            cfg = cfg.scheme(sycl_sim::Scheme::all()[scheme_i]);
        }
        match Session::create(cfg) {
            Ok(s) => prop_assert!(s.elapsed() == 0.0),
            Err(f) => prop_assert!(!f.detail.is_empty()),
        }
    }

    /// Launching arbitrary kernels always advances the clock and keeps
    /// the ledger consistent.
    #[test]
    fn launches_keep_the_ledger_consistent(
        n_kernels in 1usize..12,
        sizes in proptest::collection::vec(1u64..(1 << 22), 1..12),
    ) {
        let s = Session::create(
            SessionConfig::new(PlatformId::A100, Toolchain::Dpcpp).app("prop"),
        )
        .unwrap();
        let mut expect_total = 0.0;
        for &size in sizes.iter().take(n_kernels) {
            let k = Kernel::streaming("k", size, 24.0 * size as f64, 0.0);
            let (_, t) = s.launch_timed(&k, || ());
            expect_total += t.total;
        }
        prop_assert!((s.elapsed() - expect_total).abs() < 1e-12);
        prop_assert_eq!(s.records().len(), n_kernels.min(sizes.len()));
        let bf = s.boundary_fraction();
        prop_assert!((0.0..=1.0).contains(&bf));
    }

    /// The support matrix and backend selection are consistent: a
    /// supported toolchain always yields a backend whose host/device
    /// nature matches the platform.
    #[test]
    fn backend_matches_platform_kind(pi in 0usize..6, tci in 0usize..8) {
        let pid = ALL_PLATFORMS[pi];
        let tc = ALL_TOOLCHAINS[tci];
        if tc.supports(pid) {
            let backend = tc.backend(pid);
            prop_assert_eq!(
                backend.is_host(),
                !pid.is_gpu(),
                "{:?} on {:?} -> {:?}",
                tc,
                pid,
                backend
            );
        }
    }
}
