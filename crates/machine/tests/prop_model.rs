//! Property-based tests of the performance model: physical sanity must
//! hold for arbitrary kernels, not just the calibrated ones.

use machine_model::{
    predict, AccessProfile, BackendKind, ExecProfile, KernelFootprint, Platform, PlatformId,
    Precision, ReductionStrategy, StencilProfile,
};
use proptest::prelude::*;

fn platforms() -> Vec<Platform> {
    machine_model::all_platforms()
}

fn exec_for(p: &Platform, wg: [usize; 3]) -> ExecProfile {
    ExecProfile {
        backend: BackendKind::native_for(p.id),
        workgroup: wg,
        vector_efficiency: 1.0,
        reduction: ReductionStrategy::None,
        codegen_efficiency: 1.0,
        ranks: 1,
    }
}

fn streaming_fp(n: u64, bytes_per_item: f64, flops_per_item: f64) -> KernelFootprint {
    KernelFootprint::streaming(
        "prop",
        n,
        bytes_per_item * n as f64,
        flops_per_item * n as f64,
        Precision::F64,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Predicted times are finite and positive on every platform.
    #[test]
    fn predictions_are_finite_positive(
        n in 1u64..(1 << 26),
        bpi in 1.0f64..64.0,
        fpi in 0.0f64..200.0,
        wgx in 1usize..1024,
    ) {
        let fp = streaming_fp(n, bpi, fpi);
        for p in platforms() {
            let t = predict(&p, &fp, &exec_for(&p, [wgx, 1, 1]));
            prop_assert!(t.total.is_finite() && t.total > 0.0);
            prop_assert!(t.memory >= 0.0 && t.compute >= 0.0);
        }
    }

    /// More data never takes less time (same configuration).
    #[test]
    fn time_is_monotone_in_bytes(
        n in 1u64..(1 << 24),
        bpi in 1.0f64..32.0,
        extra in 1.01f64..8.0,
    ) {
        let small = streaming_fp(n, bpi, 1.0);
        let big = streaming_fp(n, bpi * extra, 1.0);
        for p in platforms() {
            let e = exec_for(&p, [256, 1, 1]);
            let ts = predict(&p, &small, &e).total;
            let tb = predict(&p, &big, &e).total;
            prop_assert!(tb >= ts * 0.999, "{}: {tb} < {ts}", p.name);
        }
    }

    /// More FLOPs never take less time.
    #[test]
    fn time_is_monotone_in_flops(
        n in 1u64..(1 << 24),
        fpi in 0.0f64..100.0,
        extra in 1.0f64..50.0,
    ) {
        let light = streaming_fp(n, 24.0, fpi);
        let heavy = streaming_fp(n, 24.0, fpi + extra);
        for p in platforms() {
            let e = exec_for(&p, [256, 1, 1]);
            prop_assert!(
                predict(&p, &heavy, &e).total >= predict(&p, &light, &e).total * 0.999
            );
        }
    }

    /// Effective bandwidth never exceeds the faster of STREAM and the
    /// LLC (cache-served kernels may beat STREAM — that is the paper's
    /// >100% efficiency effect — but nothing beats the LLC).
    #[test]
    fn effective_bandwidth_is_bounded(
        n in 1024u64..(1 << 25),
        bpi in 1.0f64..64.0,
    ) {
        let fp = streaming_fp(n, bpi, 1.0);
        for p in platforms() {
            let e = exec_for(&p, [256, 1, 1]);
            let t = predict(&p, &fp, &e);
            let bw = t.effective_bandwidth(&fp);
            let cap = p.mem.stream_bw.max(p.llc().bandwidth) * 1.01;
            prop_assert!(bw <= cap, "{}: {bw:.3e} > {cap:.3e}", p.name);
        }
    }

    /// Lower vectorisation efficiency never speeds a kernel up.
    #[test]
    fn scalar_code_is_never_faster(
        n in 1024u64..(1 << 24),
        fpi in 1.0f64..200.0,
        eff in 0.05f64..1.0,
    ) {
        let fp = streaming_fp(n, 16.0, fpi);
        for p in platforms().into_iter().filter(|p| !p.id.is_gpu()) {
            let mut fast = exec_for(&p, [256, 1, 1]);
            fast.backend = BackendKind::OmpHost;
            let mut slow = fast;
            slow.vector_efficiency = eff;
            prop_assert!(
                predict(&p, &fp, &slow).total >= predict(&p, &fp, &fast).total * 0.999
            );
        }
    }

    /// Stencil kernels: growing the radius never reduces the time.
    #[test]
    fn wider_stencils_cost_no_less(
        n in 16usize..256,
        r1 in 0usize..3,
        dr in 1usize..4,
    ) {
        let mk = |r: usize| {
            let pts = n * n * n;
            KernelFootprint {
                name: "stencil".into(),
                items: pts as u64,
                effective_bytes: 3.0 * 8.0 * pts as f64,
                flops: 10.0 * pts as f64,
                transcendentals: 0.0,
                precision: Precision::F64,
                access: AccessProfile::Stencil(StencilProfile {
                    domain: [n, n, n],
                    radius: [r, r, r],
                    dats_read: 2,
                    dats_written: 1,
                }),
                atomics: None,
                reductions: 0,
            }
        };
        for p in platforms() {
            let e = exec_for(&p, [64, 4, 1]);
            let narrow = predict(&p, &mk(r1), &e).total;
            let wide = predict(&p, &mk(r1 + dr), &e).total;
            prop_assert!(wide >= narrow * 0.999, "{}", p.name);
        }
    }

    /// The launch floor dominates as kernels shrink: below some size,
    /// time stops scaling with items.
    #[test]
    fn tiny_kernels_hit_the_launch_floor(items in 1u64..128) {
        let fp = streaming_fp(items, 16.0, 1.0);
        for p in platforms() {
            let e = exec_for(&p, [256, 1, 1]);
            let t = predict(&p, &fp, &e);
            prop_assert!(
                t.launch > 0.5 * t.total,
                "{}: launch {} of total {}",
                p.name,
                t.launch,
                t.total
            );
        }
    }

    /// User binary-tree reductions are never cheaper than native ones.
    #[test]
    fn tree_reductions_never_win(n in 1024u64..(1 << 24)) {
        let mut fp = streaming_fp(n, 24.0, 2.0);
        fp.reductions = 1;
        for p in platforms() {
            let mut native = exec_for(&p, [256, 1, 1]);
            native.reduction = ReductionStrategy::Native;
            let mut tree = native;
            tree.reduction = ReductionStrategy::UserBinaryTree;
            prop_assert!(
                predict(&p, &fp, &tree).total >= predict(&p, &fp, &native).total * 0.999
            );
        }
    }
}

#[test]
fn platform_ids_round_trip_through_labels() {
    for p in platforms() {
        assert_eq!(PlatformId::parse(p.id.label()), Some(p.id));
    }
}
