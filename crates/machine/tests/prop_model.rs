//! Property-style tests of the performance model: physical sanity must
//! hold for arbitrary kernels, not just the calibrated ones. Inputs come
//! from deterministic parameter sweeps (no external property-test
//! framework: the workspace builds offline with the standard library).

use machine_model::{
    predict, AccessProfile, BackendKind, ExecProfile, KernelFootprint, Platform, PlatformId,
    Precision, ReductionStrategy, StencilProfile,
};

fn platforms() -> Vec<Platform> {
    machine_model::all_platforms()
}

fn exec_for(p: &Platform, wg: [usize; 3]) -> ExecProfile {
    ExecProfile {
        backend: BackendKind::native_for(p.id),
        workgroup: wg,
        vector_efficiency: 1.0,
        reduction: ReductionStrategy::None,
        codegen_efficiency: 1.0,
        ranks: 1,
    }
}

fn streaming_fp(n: u64, bytes_per_item: f64, flops_per_item: f64) -> KernelFootprint {
    KernelFootprint::streaming(
        "prop",
        n,
        bytes_per_item * n as f64,
        flops_per_item * n as f64,
        Precision::F64,
    )
}

/// Deterministic xorshift64* stream for test inputs.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn int(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }

    fn float(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next_u64() % 1_000_000) as f64 / 1_000_000.0 * (hi - lo)
    }
}

#[test]
fn predictions_are_finite_positive() {
    let mut rng = XorShift::new(11);
    for _ in 0..48 {
        let n = rng.int(1, 1 << 26);
        let bpi = rng.float(1.0, 64.0);
        let fpi = rng.float(0.0, 200.0);
        let wgx = rng.int(1, 1024) as usize;
        let fp = streaming_fp(n, bpi, fpi);
        for p in platforms() {
            let t = predict(&p, &fp, &exec_for(&p, [wgx, 1, 1]));
            assert!(t.total.is_finite() && t.total > 0.0, "{}", p.name);
            assert!(t.memory >= 0.0 && t.compute >= 0.0);
        }
    }
}

#[test]
fn time_is_monotone_in_bytes() {
    let mut rng = XorShift::new(13);
    for _ in 0..48 {
        let n = rng.int(1, 1 << 24);
        let bpi = rng.float(1.0, 32.0);
        let extra = rng.float(1.01, 8.0);
        let small = streaming_fp(n, bpi, 1.0);
        let big = streaming_fp(n, bpi * extra, 1.0);
        for p in platforms() {
            let e = exec_for(&p, [256, 1, 1]);
            let ts = predict(&p, &small, &e).total;
            let tb = predict(&p, &big, &e).total;
            assert!(tb >= ts * 0.999, "{}: {tb} < {ts}", p.name);
        }
    }
}

#[test]
fn time_is_monotone_in_flops() {
    let mut rng = XorShift::new(17);
    for _ in 0..48 {
        let n = rng.int(1, 1 << 24);
        let fpi = rng.float(0.0, 100.0);
        let extra = rng.float(1.0, 50.0);
        let light = streaming_fp(n, 24.0, fpi);
        let heavy = streaming_fp(n, 24.0, fpi + extra);
        for p in platforms() {
            let e = exec_for(&p, [256, 1, 1]);
            assert!(predict(&p, &heavy, &e).total >= predict(&p, &light, &e).total * 0.999);
        }
    }
}

#[test]
fn effective_bandwidth_is_bounded() {
    let mut rng = XorShift::new(19);
    for _ in 0..48 {
        let n = rng.int(1024, 1 << 25);
        let bpi = rng.float(1.0, 64.0);
        let fp = streaming_fp(n, bpi, 1.0);
        for p in platforms() {
            let e = exec_for(&p, [256, 1, 1]);
            let t = predict(&p, &fp, &e);
            let bw = t.effective_bandwidth(&fp);
            let cap = p.mem.stream_bw.max(p.llc().bandwidth) * 1.01;
            assert!(bw <= cap, "{}: {bw:.3e} > {cap:.3e}", p.name);
        }
    }
}

#[test]
fn scalar_code_is_never_faster() {
    let mut rng = XorShift::new(23);
    for _ in 0..48 {
        let n = rng.int(1024, 1 << 24);
        let fpi = rng.float(1.0, 200.0);
        let eff = rng.float(0.05, 1.0);
        let fp = streaming_fp(n, 16.0, fpi);
        for p in platforms().into_iter().filter(|p| !p.id.is_gpu()) {
            let mut fast = exec_for(&p, [256, 1, 1]);
            fast.backend = BackendKind::OmpHost;
            let mut slow = fast;
            slow.vector_efficiency = eff;
            assert!(predict(&p, &fp, &slow).total >= predict(&p, &fp, &fast).total * 0.999);
        }
    }
}

#[test]
fn wider_stencils_cost_no_less() {
    let mut rng = XorShift::new(29);
    for _ in 0..32 {
        let n = rng.int(16, 256) as usize;
        let r1 = rng.int(0, 3) as usize;
        let dr = rng.int(1, 4) as usize;
        let mk = |r: usize| {
            let pts = n * n * n;
            KernelFootprint {
                name: "stencil".into(),
                items: pts as u64,
                effective_bytes: 3.0 * 8.0 * pts as f64,
                flops: 10.0 * pts as f64,
                transcendentals: 0.0,
                precision: Precision::F64,
                access: AccessProfile::Stencil(StencilProfile {
                    domain: [n, n, n],
                    radius: [r, r, r],
                    dats_read: 2,
                    dats_written: 1,
                }),
                atomics: None,
                reductions: 0,
            }
        };
        for p in platforms() {
            let e = exec_for(&p, [64, 4, 1]);
            let narrow = predict(&p, &mk(r1), &e).total;
            let wide = predict(&p, &mk(r1 + dr), &e).total;
            assert!(wide >= narrow * 0.999, "{}", p.name);
        }
    }
}

#[test]
fn tiny_kernels_hit_the_launch_floor() {
    for items in 1u64..128 {
        let fp = streaming_fp(items, 16.0, 1.0);
        for p in platforms() {
            let e = exec_for(&p, [256, 1, 1]);
            let t = predict(&p, &fp, &e);
            assert!(
                t.launch > 0.5 * t.total,
                "{}: launch {} of total {}",
                p.name,
                t.launch,
                t.total
            );
        }
    }
}

#[test]
fn tree_reductions_never_win() {
    let mut rng = XorShift::new(31);
    for _ in 0..48 {
        let n = rng.int(1024, 1 << 24);
        let mut fp = streaming_fp(n, 24.0, 2.0);
        fp.reductions = 1;
        for p in platforms() {
            let mut native = exec_for(&p, [256, 1, 1]);
            native.reduction = ReductionStrategy::Native;
            let mut tree = native;
            tree.reduction = ReductionStrategy::UserBinaryTree;
            assert!(predict(&p, &fp, &tree).total >= predict(&p, &fp, &native).total * 0.999);
        }
    }
}

#[test]
fn platform_ids_round_trip_through_labels() {
    for p in platforms() {
        assert_eq!(PlatformId::parse(p.id.label()), Some(p.id));
    }
}
