//! Calibration-anchor tests: every number the model takes from the paper
//! (or from vendor documentation) and every relationship the paper's
//! analysis relies on, asserted in one place. If a future re-calibration
//! breaks one of the paper's mechanisms, this file says which.

use machine_model::{all_platforms, platform, Platform, PlatformId, Precision, GB};

#[test]
fn table1_stream_inputs_are_the_papers_numbers() {
    // Table 1 is a calibration *input* (measured STREAM); exact match.
    let expect = [
        (PlatformId::Mi250x, 1290.0),
        (PlatformId::A100, 1310.0),
        (PlatformId::Max1100, 803.0),
        (PlatformId::Xeon8360Y, 296.0),
        (PlatformId::GenoaX, 561.0),
        (PlatformId::Altra, 167.0),
    ];
    for (id, gbs) in expect {
        assert_eq!(Platform::get(id).mem.stream_bw, gbs * GB);
    }
}

#[test]
fn cache_capacities_quoted_by_the_paper() {
    // §4.1: "the Max 1100 has the largest L2 cache (at 208 MB), whereas
    // the A100 only has 40 MB, and the MI250X 16 MB".
    assert_eq!(platform::max1100().llc().size_bytes, 208.0e6);
    assert_eq!(platform::a100().llc().size_bytes, 40.0e6);
    assert_eq!(platform::mi250x().llc().size_bytes, 16.0e6);
    // §4.3: Genoa-X's "large L3 cache (2 × 1.1GB)".
    assert_eq!(platform::genoax().llc().size_bytes, 2.2e9);
}

#[test]
fn fp32_peaks_are_in_the_papers_ranges() {
    // §2: theoretical FP32 TFLOP/s — Xeon 11–13, Genoa-X 9.22–14.22,
    // Altra 3, MI250X 23.95, A100 19.49.
    let in_range = |p: Platform, lo: f64, hi: f64| {
        let tf = p.fp32_flops / 1e12;
        assert!((lo..=hi).contains(&tf), "{}: {tf}", p.name);
    };
    in_range(platform::xeon8360y(), 11.0, 13.0);
    in_range(platform::genoax(), 9.22, 14.22);
    in_range(platform::altra(), 2.9, 3.1);
    in_range(platform::mi250x(), 23.9, 24.0);
    in_range(platform::a100(), 19.4, 19.6);
}

#[test]
fn core_counts_match_section2() {
    assert_eq!(platform::xeon8360y().chip.cores(), 72, "2 × 36 cores");
    assert_eq!(platform::genoax().chip.cores(), 176, "2 × 88 cores");
    assert_eq!(platform::altra().chip.cores(), 64);
    assert_eq!(platform::a100().chip.cores(), 108, "108 SMs");
    assert_eq!(platform::mi250x().chip.cores(), 110, "110 CUs (1 GCD)");
    assert_eq!(platform::max1100().chip.cores(), 56, "56 Xe cores");
}

#[test]
fn private_cache_ordering_drives_the_rtm_mechanism() {
    // The L1-per-CU ordering that decides where radius-4 stencil reuse
    // resolves (EXPERIMENTS.md / DESIGN.md §4.1): Max > A100 ≫ MI250X.
    let l1_per_cu = |p: Platform| p.caches.last().unwrap().size_bytes / p.chip.cores() as f64;
    let a100 = l1_per_cu(platform::a100());
    let mi = l1_per_cu(platform::mi250x());
    let max = l1_per_cu(platform::max1100());
    assert!(max > a100, "{max} vs {a100}");
    assert!(a100 > 10.0 * mi, "A100 {a100} vs MI {mi}");
}

#[test]
fn launch_latency_ordering_matches_boundary_fractions() {
    // §4.1's boundary-loop fractions imply MI250X > A100 > Max 1100.
    let l = |p: Platform| p.native_launch;
    assert!(l(platform::mi250x()) > l(platform::a100()));
    assert!(l(platform::a100()) > l(platform::max1100()));
}

#[test]
fn atomic_rates_express_the_papers_three_claims() {
    // (1) GPU FP atomics ≫ GPU CAS ("safe") atomics.
    let mi = platform::mi250x();
    assert!(mi.atomics.fp_add_per_s > 3.0 * mi.atomics.cas_per_s);
    // (2) the Max 1100 is atomics-throughput limited relative to peers.
    assert!(platform::max1100().atomics.fp_add_per_s < platform::a100().atomics.fp_add_per_s);
    // (3) CPUs have no native FP atomic path at all.
    for p in all_platforms().into_iter().filter(|p| !p.id.is_gpu()) {
        assert!(!p.atomics.has_native_fp, "{}", p.name);
    }
}

#[test]
fn interconnects_exist_exactly_on_gpus() {
    for p in all_platforms() {
        assert_eq!(p.interconnect_bw.is_some(), p.id.is_gpu(), "{}", p.name);
    }
}

#[test]
fn ridge_points_make_the_suite_bandwidth_bound() {
    // Every platform's f64 ridge sits above the suite's typical
    // intensities (CloverLeaf ~0.3, SBLI-SN ~2.7, MG-CFD flux ~2.3
    // FLOP/byte) — the premise "primarily bandwidth-bound" holds.
    for p in all_platforms() {
        let ridge = p.ridge_point(Precision::F64);
        assert!(ridge > 3.0, "{}: ridge {ridge}", p.name);
    }
}

#[test]
fn sustained_app_fraction_only_derates_the_max1100() {
    for p in all_platforms() {
        if p.id == PlatformId::Max1100 {
            assert!(p.mem.app_sustained < 1.0);
        } else {
            assert_eq!(p.mem.app_sustained, 1.0, "{}", p.name);
        }
    }
}
