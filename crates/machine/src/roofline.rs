//! Roofline analysis: classify kernels as bandwidth- or compute-bound.
//!
//! The paper's application suite is chosen to be "primarily
//! bandwidth-bound"; this module makes that property checkable — every
//! miniapp kernel should sit left of the ridge point on every platform
//! (with the high-order stencils approaching it).

use crate::footprint::{KernelFootprint, Precision};
use crate::platform::Platform;

/// Which resource bounds a kernel on a platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    Bandwidth,
    Compute,
}

/// A point on the roofline: the kernel's intensity and attainable
/// performance.
#[derive(Debug, Clone, Copy)]
pub struct RooflinePoint {
    /// Arithmetic intensity, FLOP/byte.
    pub intensity: f64,
    /// Attainable FLOP/s at this intensity.
    pub attainable_flops: f64,
    /// The binding resource.
    pub bound: Bound,
}

impl Platform {
    /// The ridge point (FLOP/byte) where a kernel of the given precision
    /// transitions from bandwidth- to compute-bound.
    pub fn ridge_point(&self, precision: Precision) -> f64 {
        self.peak_flops(precision) / self.mem.stream_bw
    }

    /// Classify a kernel on this platform's roofline.
    pub fn roofline(&self, fp: &KernelFootprint) -> RooflinePoint {
        let intensity = fp.intensity();
        let ridge = self.ridge_point(fp.precision);
        let peak = self.peak_flops(fp.precision);
        let attainable = (intensity * self.mem.stream_bw).min(peak);
        RooflinePoint {
            intensity,
            attainable_flops: attainable,
            bound: if intensity < ridge {
                Bound::Bandwidth
            } else {
                Bound::Compute
            },
        }
    }
}

/// Render a platform's roofline parameters and a set of kernels on it.
pub fn roofline_text(platform: &Platform, kernels: &[&KernelFootprint]) -> String {
    let mut out = format!(
        "# Roofline: {} (ridge f64 {:.1} / f32 {:.1} FLOP/byte)\n",
        platform.name,
        platform.ridge_point(Precision::F64),
        platform.ridge_point(Precision::F32),
    );
    for fp in kernels {
        let pt = platform.roofline(fp);
        out.push_str(&format!(
            "{:20} AI {:6.2} F/B -> {:8.2} GFLOP/s attainable [{}]\n",
            fp.name,
            pt.intensity,
            pt.attainable_flops / 1e9,
            match pt.bound {
                Bound::Bandwidth => "bandwidth-bound",
                Bound::Compute => "compute-bound",
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform;

    fn fp(intensity: f64, precision: Precision) -> KernelFootprint {
        KernelFootprint::streaming(
            "k",
            1 << 20,
            (1 << 20) as f64,
            intensity * (1 << 20) as f64,
            precision,
        )
    }

    #[test]
    fn ridge_points_follow_machine_balance() {
        let a100 = platform::a100();
        // 9.7 TFLOP/s over 1.31 TB/s ≈ 7.4 FLOP/byte.
        let ridge = a100.ridge_point(Precision::F64);
        assert!((7.0..8.0).contains(&ridge), "{ridge}");
        // f32 peak doubles the ridge.
        assert!(a100.ridge_point(Precision::F32) > 1.9 * ridge);
    }

    #[test]
    fn classification_flips_at_the_ridge() {
        let p = platform::xeon8360y();
        let ridge = p.ridge_point(Precision::F64);
        assert_eq!(
            p.roofline(&fp(ridge * 0.5, Precision::F64)).bound,
            Bound::Bandwidth
        );
        assert_eq!(
            p.roofline(&fp(ridge * 2.0, Precision::F64)).bound,
            Bound::Compute
        );
    }

    #[test]
    fn attainable_flops_cap_at_peak() {
        let p = platform::altra();
        let pt = p.roofline(&fp(1e6, Precision::F32));
        assert!((pt.attainable_flops - p.fp32_flops).abs() < 1.0);
    }

    #[test]
    fn triad_is_bandwidth_bound_everywhere() {
        let triad = KernelFootprint::streaming(
            "triad",
            1 << 20,
            24.0 * (1 << 20) as f64,
            2.0 * (1 << 20) as f64,
            Precision::F64,
        );
        for p in crate::platform::all_platforms() {
            assert_eq!(p.roofline(&triad).bound, Bound::Bandwidth, "{}", p.name);
        }
    }

    #[test]
    fn text_rendering_mentions_every_kernel() {
        let p = platform::a100();
        let a = fp(0.1, Precision::F64);
        let b = fp(100.0, Precision::F64);
        let text = roofline_text(&p, &[&a, &b]);
        assert!(text.contains("bandwidth-bound"));
        assert!(text.contains("compute-bound"));
        assert!(text.contains("ridge"));
    }
}
