//! Cache / data-movement model.
//!
//! Converts a [`KernelFootprint`] plus an [`ExecProfile`] into traffic at
//! each memory-system level, together with the efficiency factors
//! (coalescing, occupancy) that scale achievable bandwidth.
//!
//! ## Stencil mechanism
//!
//! For stencil kernels the decisive effect — and the one the paper's own
//! profiling points at ("comes down to L1/L2 cache hit rates improving
//! significantly") — is *where stencil-neighbour reuse resolves*:
//!
//! 1. Each point of a star stencil re-reads `2·ry + 2·rz` off-row
//!    neighbours (x-neighbours come for free from cache lines/registers).
//! 2. If the work-group's tile footprint `(t + 2r)` fits in the private
//!    (per-CU / per-core) cache share, those re-reads are L1 hits — free.
//!    A100 SMs have 192 KB, Xe-cores 512 KB; MI250X CUs only 16 KB, which
//!    is why the MI250X achieves consistently lower efficiency on the
//!    high-order RTM/Acoustic stencils no matter the tuning.
//! 3. Re-reads that miss L1 are served at L2/LLC bandwidth — a real time
//!    cost even when no extra DRAM traffic occurs.
//! 4. Re-reads miss the LLC too when the streaming layer condition
//!    (`nx·ny·(2rz+1)` planes of the read datasets) exceeds LLC capacity;
//!    then they become DRAM traffic. The Max 1100's 208 MB L2 absorbs
//!    nearly everything; the MI250X's 16 MB does not — reproducing the
//!    CloverLeaf-3D efficiency gap (56 % vs 72–82 %).
//! 5. Datasets that fit wholesale in the LLC are served there across
//!    sweeps (Genoa-X's 2.2 GB L3 ⇒ the paper's >100 % "architectural
//!    efficiency" entries).

use crate::exec::ExecProfile;
use crate::footprint::{AccessProfile, KernelFootprint};
use crate::platform::{ChipKind, Platform};

/// Fraction of the LLC usable by one kernel's streams (the rest holds
/// code, tables, other datasets).
const LLC_USABLE: f64 = 0.80;

/// Concurrent work-groups sharing one CU's private cache.
const GPU_WGS_PER_CU: f64 = 8.0;

/// Work-items one CU can keep in flight.
const GPU_ITEMS_PER_CU: f64 = 2048.0;

/// Work-group slots per CU: small work-groups cannot fill the CU even
/// when thousands of them are queued.
const GPU_WG_SLOTS_PER_CU: f64 = 32.0;

/// Cyclic (sweep-after-sweep) re-use under LRU-like replacement has a
/// sharp cliff: a working set at capacity is fully retained, at 2× the
/// capacity essentially nothing survives. BabelStream exploits exactly
/// this by sizing arrays ≥ 4× the cache.
fn residency(working_set: f64, llc_eff: f64) -> f64 {
    (2.0 * llc_eff / working_set.max(1.0) - 1.0).clamp(0.0, 1.0)
}

/// Traffic split and bandwidth-efficiency factors for one launch.
#[derive(Debug, Clone, Copy)]
pub struct MemoryTraffic {
    /// Bytes that must come from / go to DRAM.
    pub dram_bytes: f64,
    /// Bytes served by the last-level cache (compulsory re-use plus
    /// stencil-neighbour traffic that missed the private cache).
    pub llc_bytes: f64,
    /// Multiplier on the platform's STREAM bandwidth for this launch
    /// (coalescing × occupancy × pattern), in (0, 1].
    pub bandwidth_efficiency: f64,
}

/// Diagnostic detail of the cache analysis (used by tests and reporting;
/// mirrors the paper's bytes-per-wave / hit-rate analysis).
#[derive(Debug, Clone, Copy)]
pub struct CacheOutcome {
    pub traffic: MemoryTraffic,
    /// Fraction of stencil-neighbour reuse resolved in the private cache.
    pub l1_hit: f64,
    /// Fraction of L1-missing reuse absorbed by the LLC (layer condition).
    pub absorption: f64,
    /// Occupancy-derived bandwidth factor, in (0, 1].
    pub occupancy: f64,
    /// Cache-line utilisation for strided/gathered accesses, in (0, 1].
    pub line_utilisation: f64,
}

/// Analyse one launch; see module docs for the model.
pub fn analyze(platform: &Platform, fp: &KernelFootprint, exec: &ExecProfile) -> CacheOutcome {
    let llc = platform.llc();
    let llc_eff = llc.size_bytes * LLC_USABLE;
    let occupancy = occupancy_factor(platform, fp, exec);

    match &fp.access {
        AccessProfile::Streamed => {
            // Iterative kernels re-touch the same arrays sweep after
            // sweep: the resident fraction is served at LLC bandwidth.
            let resident = residency(fp.effective_bytes, llc_eff);
            CacheOutcome {
                traffic: MemoryTraffic {
                    dram_bytes: fp.effective_bytes * (1.0 - resident),
                    llc_bytes: fp.effective_bytes * resident,
                    bandwidth_efficiency: occupancy,
                },
                l1_hit: 1.0,
                absorption: resident,
                occupancy,
                line_utilisation: 1.0,
            }
        }
        AccessProfile::Stencil(s) => {
            let elem = fp.precision.bytes();
            let is_gpu = matches!(platform.chip, ChipKind::Gpu { .. });

            // (1) Off-row neighbour re-reads per point (star stencil).
            let nb_per_point = 2.0 * s.radius[1] as f64 + 2.0 * s.radius[2] as f64;
            let nb_bytes = fp.items as f64 * elem * nb_per_point;

            // (2) Private-cache share vs tile footprint (every read
            // dataset contributes its halo-extended tile).
            let tile_fp: f64 = (0..3)
                .map(|d| {
                    let extent = s.domain[d].max(1);
                    (exec.workgroup[d].clamp(1, extent) + 2 * s.radius[d]) as f64
                })
                .product::<f64>()
                * elem
                * s.dats_read.max(1) as f64;
            let private = private_cache_share(platform);
            let l1_hit = (private / tile_fp.max(1.0)).min(1.0);

            // (3)/(4) L1 misses go to the LLC; they fall through to DRAM
            // when the combined footprint of all *concurrently running*
            // work-groups (the data the LLC must keep hot for inter-tile
            // reuse) exceeds LLC capacity.
            let concurrent = match platform.chip {
                ChipKind::Gpu { compute_units, .. } => compute_units as f64 * GPU_WGS_PER_CU,
                ChipKind::Cpu {
                    sockets,
                    cores_per_socket,
                    ..
                } => (sockets * cores_per_socket) as f64,
            };
            let active_ws = concurrent * tile_fp;
            let absorption = (llc_eff / active_ws.max(1.0)).min(1.0);
            let reuse = nb_bytes * (1.0 - l1_hit);
            let reuse_llc = reuse * absorption;
            let reuse_dram = reuse * (1.0 - absorption);

            // (5) Whole-dataset LLC residency across sweeps.
            let resident = residency(fp.effective_bytes, llc_eff);

            // Coalescing: work-groups narrower than a cache line in x
            // waste the remainder of every gathered line (SIMT loads).
            let line_elems = llc.line_bytes / elem;
            let tx = exec.workgroup[0].max(1) as f64;
            let line_utilisation = if is_gpu {
                (tx / line_elems).clamp(1.0 / line_elems, 1.0)
            } else {
                1.0
            };

            let compulsory = fp.effective_bytes;
            CacheOutcome {
                traffic: MemoryTraffic {
                    dram_bytes: (compulsory * (1.0 - resident)) / line_utilisation + reuse_dram,
                    llc_bytes: compulsory * resident + reuse_llc,
                    bandwidth_efficiency: occupancy * stencil_stream_efficiency(platform),
                },
                l1_hit,
                absorption,
                occupancy,
                line_utilisation,
            }
        }
        AccessProfile::Indirect(ind) => {
            let elem = fp.precision.bytes();
            let line_elems = llc.line_bytes / elem;
            // Locality q in [0,1] sets how much of each gathered cache
            // line is useful: q→1 consecutive (full line), q→0 random
            // (one element per line).
            let q = ind.locality.clamp(0.0, 1.0);
            let line_utilisation = q + (1.0 - q) / line_elems;

            // Split the gather volume into the *unique* bytes (each
            // target element touched once — what the paper's effective-
            // bytes rule counts) and the *excess* re-gathers. With good
            // ordering (q→1) re-gathers strike within a few elements and
            // resolve in private caches for free; colour-scrambled
            // execution (q→0) re-gathers across the whole dataset, which
            // only the LLC — if big enough — can absorb.
            let total_gather = ind.indirect_bytes_per_item * ind.from_size as f64;
            let unique = (ind.indirect_bytes_per_item / ind.arity.max(1.0) * ind.to_size as f64)
                .min(total_gather);
            let excess = total_gather - unique;
            let cold = excess * (1.0 - q);
            let cold_absorb = residency(unique.max(1.0), llc_eff);
            let direct_total = (fp.effective_bytes - total_gather).max(0.0);

            // Whole-dataset residency across repeated sweeps (the coarse
            // multigrid levels that give CPUs >100 % efficiency).
            let resident = residency(fp.effective_bytes, llc_eff);

            let dram_raw = direct_total
                + unique / line_utilisation
                + cold * (1.0 - cold_absorb) / line_utilisation;
            let llc_raw = cold * cold_absorb;
            CacheOutcome {
                traffic: MemoryTraffic {
                    dram_bytes: dram_raw * (1.0 - resident),
                    llc_bytes: llc_raw + dram_raw * resident,
                    bandwidth_efficiency: occupancy * 0.9,
                },
                l1_hit: q,
                absorption: resident.max(cold_absorb),
                occupancy,
                line_utilisation,
            }
        }
    }
}

/// Private (per-CU / per-core) cache bytes one work-group can count on.
fn private_cache_share(platform: &Platform) -> f64 {
    let private_level = platform
        .caches
        .last()
        .expect("platforms always have at least one cache level");
    match platform.chip {
        ChipKind::Gpu { compute_units, .. } => {
            private_level.size_bytes / compute_units as f64 / GPU_WGS_PER_CU
        }
        ChipKind::Cpu {
            sockets,
            cores_per_socket,
            ..
        } => private_level.size_bytes / (sockets * cores_per_socket) as f64,
    }
}

/// How close a launch configuration gets to filling the machine.
fn occupancy_factor(platform: &Platform, fp: &KernelFootprint, exec: &ExecProfile) -> f64 {
    match platform.chip {
        ChipKind::Gpu { compute_units, .. } => {
            let wg = exec.workgroup_items() as f64;
            // A CU runs at most GPU_WG_SLOTS_PER_CU work-groups, so the
            // in-flight item count is wg × slots, capped by the item
            // limit — small work-groups under-fill the load queues.
            let in_flight = (wg * GPU_WG_SLOTS_PER_CU).min(GPU_ITEMS_PER_CU);
            let wg_fill = (in_flight / GPU_ITEMS_PER_CU).min(1.0);
            // And the whole launch must cover the CUs.
            let wgs = (fp.items as f64 / wg.max(1.0)).ceil();
            let launch_fill = (wgs / compute_units as f64).min(1.0);
            (wg_fill.max(0.05) * launch_fill.max(0.05)).clamp(0.02, 1.0)
        }
        ChipKind::Cpu {
            sockets,
            cores_per_socket,
            ..
        } => {
            let cores = (sockets * cores_per_socket) as f64;
            // Enough chunks to keep every core busy?
            let wg = exec.workgroup_items().max(1) as f64;
            let chunks = (fp.items as f64 / wg).ceil();
            (chunks / cores).clamp(0.05, 1.0)
        }
    }
}

/// Stencil streams achieve less than STREAM: GPUs lose a little to TLB
/// and launch ramp-up; CPUs lose a lot more because every store incurs a
/// write-allocate read that STREAM's non-temporal stores avoid.
fn stencil_stream_efficiency(platform: &Platform) -> f64 {
    match platform.chip {
        ChipKind::Gpu { .. } => 0.95,
        ChipKind::Cpu { .. } => 0.72,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{BackendKind, ReductionStrategy};
    use crate::footprint::{IndirectProfile, Precision, StencilProfile};
    use crate::platform;

    fn stencil_fp(domain: [usize; 3], radius: [usize; 3], prec: Precision) -> KernelFootprint {
        let pts: usize = domain.iter().map(|&d| d.max(1)).product();
        KernelFootprint {
            name: "test".into(),
            items: pts as u64,
            effective_bytes: 3.0 * pts as f64 * prec.bytes(),
            flops: 10.0 * pts as f64,
            transcendentals: 0.0,
            precision: prec,
            access: AccessProfile::Stencil(StencilProfile {
                domain,
                radius,
                dats_read: 2,
                dats_written: 1,
            }),
            atomics: None,
            reductions: 0,
        }
    }

    fn exec(wg: [usize; 3]) -> ExecProfile {
        ExecProfile {
            backend: BackendKind::Cuda,
            workgroup: wg,
            vector_efficiency: 1.0,
            reduction: ReductionStrategy::None,
            codegen_efficiency: 1.0,
            ranks: 1,
        }
    }

    #[test]
    fn strip_tiles_overflow_private_cache_where_square_tiles_fit() {
        // RTM-like radius-4 stencil, 320^3 f32, on the A100: a 16×16 tile
        // footprint fits the 48 KB L1 share, a 256-wide strip does not.
        let a100 = platform::a100();
        let fp = stencil_fp([320, 320, 320], [4, 4, 4], Precision::F32);
        let square = analyze(&a100, &fp, &exec([16, 16, 1]));
        let strip = analyze(&a100, &fp, &exec([512, 1, 1]));
        assert!(
            strip.l1_hit < square.l1_hit,
            "strip {} vs square {}",
            strip.l1_hit,
            square.l1_hit
        );
        let total = |o: &CacheOutcome| o.traffic.llc_bytes + o.traffic.dram_bytes;
        assert!(total(&strip) > total(&square), "strip must move more data");
    }

    #[test]
    fn mi250x_tiny_l1_floods_l2_regardless_of_tuning() {
        // The paper: MI250X achieves only 19-30% on RTM/Acoustic even
        // tuned, vs 48-59% elsewhere — its 16 KB L1 cannot hold any
        // radius-4 tile.
        let fp = stencil_fp([320, 320, 320], [4, 4, 4], Precision::F32);
        let mi = analyze(&platform::mi250x(), &fp, &exec([64, 4, 1]));
        let a100 = analyze(&platform::a100(), &fp, &exec([64, 4, 1]));
        let max = analyze(&platform::max1100(), &fp, &exec([64, 4, 1]));
        assert!(mi.l1_hit < a100.l1_hit);
        assert!(a100.l1_hit <= max.l1_hit + 1e-12);
        let total = |o: &CacheOutcome| o.traffic.llc_bytes + o.traffic.dram_bytes;
        assert!(total(&mi) > total(&a100), "L1 misses become traffic");
    }

    #[test]
    fn layer_condition_failure_sends_reuse_to_dram_on_small_l2() {
        // CloverLeaf-3D-like plane working set (~16 MB for 408^2 f64 ×
        // several dats) overflows the MI250X L2 but not the A100's.
        let mut fp = stencil_fp([408, 408, 408], [1, 1, 1], Precision::F64);
        if let AccessProfile::Stencil(ref mut s) = fp.access {
            s.dats_read = 4;
        }
        let e = exec([256, 1, 1]);
        let mi = analyze(&platform::mi250x(), &fp, &e);
        let a100 = analyze(&platform::a100(), &fp, &e);
        assert!(mi.absorption < a100.absorption);
        assert!(mi.traffic.dram_bytes > a100.traffic.dram_bytes);
    }

    #[test]
    fn tiny_workgroups_tank_gpu_occupancy() {
        let a100 = platform::a100();
        let fp = stencil_fp([7680, 7680, 1], [1, 1, 0], Precision::F64);
        let small = analyze(&a100, &fp, &exec([4, 1, 1]));
        let good = analyze(&a100, &fp, &exec([256, 1, 1]));
        assert!(small.occupancy < 0.25 * good.occupancy);
    }

    #[test]
    fn dataset_fitting_in_genoax_l3_is_served_by_cache() {
        let genoa = platform::genoax();
        // 512^2 f64 ×3 dats ≈ 6.3 MB — far below 2.2 GB.
        let fp = stencil_fp([512, 512, 1], [1, 1, 0], Precision::F64);
        let out = analyze(&genoa, &fp, &exec([64, 4, 1]));
        assert!(out.traffic.dram_bytes < 0.01 * fp.effective_bytes);
        assert!(out.traffic.llc_bytes > 0.99 * fp.effective_bytes);
    }

    #[test]
    fn random_gather_wastes_cache_lines() {
        let a100 = platform::a100();
        // A target set far larger than the LLC, so re-gathers cannot be
        // absorbed and ordering decides DRAM traffic.
        let mk = |loc: f64| KernelFootprint {
            name: "edges".into(),
            items: 1 << 24,
            effective_bytes: 1024.0 * (1 << 20) as f64,
            flops: 30.0 * (1 << 24) as f64,
            transcendentals: 0.0,
            precision: Precision::F64,
            access: AccessProfile::Indirect(IndirectProfile {
                from_size: 1 << 24,
                to_size: 1 << 23,
                arity: 2.0,
                locality: loc,
                indirect_bytes_per_item: 32.0,
            }),
            atomics: None,
            reductions: 0,
        };
        let random = analyze(&a100, &mk(0.0), &exec([256, 1, 1]));
        let ordered = analyze(&a100, &mk(1.0), &exec([256, 1, 1]));
        assert!(random.traffic.dram_bytes > 2.0 * ordered.traffic.dram_bytes);
        assert!(random.line_utilisation < ordered.line_utilisation);
    }

    #[test]
    fn streamed_arrays_larger_than_llc_hit_dram() {
        let a100 = platform::a100();
        let fp = KernelFootprint::streaming(
            "triad",
            1 << 25,
            3.0 * 8.0 * (1 << 25) as f64,
            2.0 * (1 << 25) as f64,
            Precision::F64,
        );
        let out = analyze(&a100, &fp, &exec([1024, 1, 1]));
        assert!(out.traffic.dram_bytes > 0.85 * fp.effective_bytes);
    }

    #[test]
    fn more_cache_never_means_more_dram_traffic() {
        // Monotonicity property: grow the LLC, DRAM bytes must not grow.
        let fp = stencil_fp([320, 320, 320], [4, 4, 4], Precision::F32);
        let e = exec([64, 2, 1]);
        let mut prev = f64::INFINITY;
        for scale in [0.5, 1.0, 4.0, 16.0] {
            let mut p = platform::mi250x();
            p.caches[0].size_bytes *= scale;
            let out = analyze(&p, &fp, &e);
            assert!(
                out.traffic.dram_bytes <= prev + 1.0,
                "scale {scale}: {} > {prev}",
                out.traffic.dram_bytes
            );
            prev = out.traffic.dram_bytes;
        }
    }

    #[test]
    fn narrow_gpu_tiles_lose_coalescing() {
        let a100 = platform::a100();
        let fp = stencil_fp([408, 408, 408], [1, 1, 1], Precision::F64);
        let narrow = analyze(&a100, &fp, &exec([1, 256, 1]));
        let wide = analyze(&a100, &fp, &exec([256, 1, 1]));
        assert!(narrow.line_utilisation < wide.line_utilisation);
        assert!(narrow.traffic.dram_bytes > wide.traffic.dram_bytes);
    }
}
