//! Execution profiles: how a toolchain chose to run a kernel.
//!
//! The SYCL-runtime simulation (`sycl-sim`) owns toolchain behaviour; what
//! it hands this crate is the *outcome* of those choices — which backend
//! path the launch goes down, the work-group shape, how well the kernel
//! vectorised, and the reduction strategy. This keeps the machine model
//! toolchain-agnostic.

use crate::platform::{Platform, PlatformId};
use crate::US;

/// The driver path a kernel launch takes. Launch overhead depends on this
/// — the paper repeatedly attributes CPU-SYCL slowness to DPC++ going
/// through OpenCL per launch while OpenSYCL compiles straight to OpenMP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Native CUDA driver launch (A100).
    Cuda,
    /// Native HIP launch (MI250X).
    Hip,
    /// SYCL through Level Zero (Max 1100) or PI/CUDA / PI/HIP plugins.
    SyclGpu,
    /// OpenMP target offload.
    OmpOffload,
    /// OpenMP parallel region on the host (also OpenSYCL's CPU backend).
    OmpHost,
    /// OpenCL CPU driver (DPC++'s only CPU path).
    OpenClCpu,
    /// One MPI rank per core; per-loop cost is a function call, but halo
    /// exchanges appear as explicit communication elsewhere.
    MpiRank,
}

impl BackendKind {
    /// Per-launch overhead in seconds on the given platform.
    ///
    /// Calibration anchors from the paper:
    /// * MI250X boundary loops cost 2.6 %/11.1 % of CloverLeaf (launch-
    ///   latency bound) vs 1.5 %/7.8 % on the A100 and 0.9 %/4.8 % on the
    ///   Max 1100.
    /// * On the Xeon, DPC++ (OpenCL) spends 5.4–8.7 % of CloverLeaf 2D in
    ///   boundary kernels vs 0.34 % for MPI+OpenMP and ~1.2–2.5 % for
    ///   OpenSYCL (which maps to OpenMP at compile time).
    pub fn launch_overhead(self, platform: &Platform) -> f64 {
        let native = platform.native_launch;
        match self {
            BackendKind::Cuda | BackendKind::Hip => native,
            BackendKind::SyclGpu => native * 1.1,
            BackendKind::OmpOffload => native * 1.6,
            // Fork/join of an OpenMP parallel region.
            BackendKind::OmpHost => native * 3.0,
            // The OpenCL CPU driver pays argument marshalling, command
            // queue and NDRange setup per launch — millisecond scale,
            // which is what makes DPC++ boundary loops cost 5.4-8.7 %
            // of CloverLeaf 2D on the Xeon (§4.2).
            BackendKind::OpenClCpu => native * 250.0,
            BackendKind::MpiRank => 0.3 * US,
        }
    }

    /// Whether this backend runs on the host CPU.
    pub fn is_host(self) -> bool {
        matches!(
            self,
            BackendKind::OmpHost | BackendKind::OpenClCpu | BackendKind::MpiRank
        )
    }

    /// The natural native backend for a platform's device kernels.
    pub fn native_for(platform: PlatformId) -> BackendKind {
        match platform {
            PlatformId::A100 => BackendKind::Cuda,
            PlatformId::Mi250x => BackendKind::Hip,
            PlatformId::Max1100 => BackendKind::OmpOffload,
            _ => BackendKind::OmpHost,
        }
    }
}

/// How a reduction result is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReductionStrategy {
    /// No reduction in this launch.
    None,
    /// Hardware/native tree (CUDA shuffle reductions, OpenMP `reduction`).
    Native,
    /// User-written binary-tree over work-group partials — the fallback
    /// the paper used because SYCL 2020 reductions were unsupported or
    /// broken; §4.2 reports it 6–7× slower than OpenMP on CPUs.
    UserBinaryTree,
}

/// The outcome of toolchain decisions for one kernel launch.
#[derive(Debug, Clone, Copy)]
pub struct ExecProfile {
    pub backend: BackendKind,
    /// Work-group / tile shape the iteration space was decomposed into.
    pub workgroup: [usize; 3],
    /// Fraction of SIMD/FLOP peak the generated code achieves (1.0 =
    /// perfectly vectorised; `1/simd_lanes` = scalar on a CPU).
    pub vector_efficiency: f64,
    /// Reduction strategy when the kernel reduces.
    pub reduction: ReductionStrategy,
    /// Code-generation quality multiplier in (0, 1]: how close the
    /// compiled kernel gets to the platform's achievable throughput
    /// (compiler-stack maturity; §4.1's small nd_range-vs-native gaps
    /// and the Max 1100's 30 % OMP-offload deficit).
    pub codegen_efficiency: f64,
    /// Number of cooperating devices/ranks the launch was split across
    /// (MPI decomposition); 1 for single-device runs.
    pub ranks: usize,
}

impl ExecProfile {
    /// A reasonable default profile: native backend, runtime-chosen shape.
    pub fn native(platform: PlatformId) -> ExecProfile {
        ExecProfile {
            backend: BackendKind::native_for(platform),
            workgroup: [256, 1, 1],
            vector_efficiency: 1.0,
            reduction: ReductionStrategy::Native,
            codegen_efficiency: 1.0,
            ranks: 1,
        }
    }

    /// Work-group size in work items.
    pub fn workgroup_items(&self) -> usize {
        self.workgroup.iter().map(|&w| w.max(1)).product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform;

    #[test]
    fn opencl_cpu_launches_cost_much_more_than_omp_host() {
        let xeon = platform::xeon8360y();
        let ocl = BackendKind::OpenClCpu.launch_overhead(&xeon);
        let omp = BackendKind::OmpHost.launch_overhead(&xeon);
        assert!(
            ocl > 4.0 * omp,
            "DPC++-on-CPU must pay the OpenCL driver cost ({ocl} vs {omp})"
        );
    }

    #[test]
    fn gpu_native_launch_ordering_follows_platforms() {
        let a100 = platform::a100();
        let mi = platform::mi250x();
        let max = platform::max1100();
        assert!(BackendKind::Hip.launch_overhead(&mi) > BackendKind::Cuda.launch_overhead(&a100));
        assert!(
            BackendKind::SyclGpu.launch_overhead(&max)
                < BackendKind::SyclGpu.launch_overhead(&a100)
        );
    }

    #[test]
    fn native_backend_selection() {
        assert_eq!(BackendKind::native_for(PlatformId::A100), BackendKind::Cuda);
        assert_eq!(
            BackendKind::native_for(PlatformId::Mi250x),
            BackendKind::Hip
        );
        assert_eq!(
            BackendKind::native_for(PlatformId::Max1100),
            BackendKind::OmpOffload
        );
        assert_eq!(
            BackendKind::native_for(PlatformId::GenoaX),
            BackendKind::OmpHost
        );
    }

    #[test]
    fn workgroup_items_clamps_zeroes() {
        let mut p = ExecProfile::native(PlatformId::A100);
        p.workgroup = [0, 8, 4];
        assert_eq!(p.workgroup_items(), 32);
    }

    #[test]
    fn host_flag() {
        assert!(BackendKind::OmpHost.is_host());
        assert!(BackendKind::OpenClCpu.is_host());
        assert!(BackendKind::MpiRank.is_host());
        assert!(!BackendKind::Cuda.is_host());
        assert!(!BackendKind::OmpOffload.is_host());
    }
}
