//! Kernel footprints: what a launch *is*, independent of how it is run.
//!
//! The DSLs construct one [`KernelFootprint`] per `par_loop`. Byte counts
//! follow the paper's §4.3 effective-bandwidth rule: the total size of the
//! datasets accessed (counted twice if read-write), plus the size of any
//! mapping tables used. Everything else describes *structure* (stencil
//! radii, indirection, atomics) that the cache and throughput models need.

/// Floating-point width of a kernel's primary datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    F32,
    F64,
}

impl Precision {
    /// Bytes per element.
    pub fn bytes(self) -> f64 {
        match self {
            Precision::F32 => 4.0,
            Precision::F64 => 8.0,
        }
    }
}

/// Structured-mesh stencil description (per kernel, merged over its args).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StencilProfile {
    /// Iteration-space extents; unused trailing dims are 1.
    pub domain: [usize; 3],
    /// Maximum stencil radius per dimension over all read args.
    pub radius: [usize; 3],
    /// Distinct datasets read (each streamed once if caching is perfect).
    pub dats_read: usize,
    /// Distinct datasets written.
    pub dats_written: usize,
}

impl StencilProfile {
    /// Number of points in the iteration space.
    pub fn points(&self) -> usize {
        self.domain[0].max(1) * self.domain[1].max(1) * self.domain[2].max(1)
    }

    /// True when the loop only walks a lower-dimensional boundary slab
    /// (one extent is tiny relative to the others).
    pub fn is_boundary_like(&self) -> bool {
        let d: Vec<usize> = self.domain.iter().copied().filter(|&x| x > 1).collect();
        if d.is_empty() {
            return true;
        }
        let max = *d.iter().max().unwrap();
        let min = *d.iter().min().unwrap();
        max > 64 && min <= 8 || self.points() < 4096
    }
}

/// Unstructured indirect-access description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndirectProfile {
    /// Elements of the *from* set (e.g. edges) this loop iterates over.
    pub from_size: usize,
    /// Elements of the *to* set (e.g. vertices/cells) reached indirectly.
    pub to_size: usize,
    /// Average arity of the mapping (vertices per edge, etc.).
    pub arity: f64,
    /// Ordering quality in [0, 1]: 1 means consecutive from-elements touch
    /// consecutive to-elements (renumbered mesh), 0 means random access.
    pub locality: f64,
    /// Bytes of indirect data gathered/scattered per from-element.
    pub indirect_bytes_per_item: f64,
}

/// Memory-access structure of a kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessProfile {
    /// Pure unit-stride streaming (BabelStream, field copies).
    Streamed,
    /// Structured-mesh stencil.
    Stencil(StencilProfile),
    /// Unstructured gather/scatter through mapping tables.
    Indirect(IndirectProfile),
}

/// What kind of atomic resolves the kernel's races.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicKind {
    /// Hardware floating-point atomic add (CUDA `atomicAdd`, HIP
    /// "unsafe" atomics).
    NativeFp,
    /// Compare-and-swap loop ("safe" atomics; the only option on CPUs).
    CasLoop,
}

/// Atomic-update volume of a kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtomicProfile {
    /// Total atomic scalar updates issued by the launch.
    pub updates: u64,
    pub kind: AtomicKind,
}

/// A complete, backend-independent description of one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelFootprint {
    /// Kernel name (for reports and per-kernel breakdowns).
    pub name: String,
    /// Iteration count (mesh points / set elements).
    pub items: u64,
    /// Compulsory DRAM bytes by the paper's effective-bytes rule: datasets
    /// read once + written once (+ twice for read-write) + mapping tables.
    pub effective_bytes: f64,
    /// Floating-point operations in the launch.
    pub flops: f64,
    /// Expensive intrinsic evaluations (sqrt/exp/sin...) in the launch.
    pub transcendentals: f64,
    pub precision: Precision,
    pub access: AccessProfile,
    pub atomics: Option<AtomicProfile>,
    /// Scalar reduction results produced by this launch (0 for none).
    pub reductions: usize,
}

impl KernelFootprint {
    /// A streaming kernel touching `bytes` with `flops` total FLOPs.
    pub fn streaming(
        name: impl Into<String>,
        items: u64,
        bytes: f64,
        flops: f64,
        precision: Precision,
    ) -> Self {
        KernelFootprint {
            name: name.into(),
            items,
            effective_bytes: bytes,
            flops,
            transcendentals: 0.0,
            precision,
            access: AccessProfile::Streamed,
            atomics: None,
            reductions: 0,
        }
    }

    /// Arithmetic intensity in FLOP/byte.
    pub fn intensity(&self) -> f64 {
        if self.effective_bytes > 0.0 {
            self.flops / self.effective_bytes
        } else {
            f64::INFINITY
        }
    }

    /// True when this launch is a small boundary-style loop whose cost is
    /// dominated by launch latency rather than data volume.
    pub fn is_boundary(&self) -> bool {
        match &self.access {
            AccessProfile::Stencil(s) => s.is_boundary_like(),
            _ => self.items < 4096,
        }
    }

    /// Achieved bandwidth if this footprint's compulsory bytes moved in
    /// `seconds` — the per-kernel GB/s the telemetry aggregate table and
    /// the paper's profiling views report.
    pub fn achieved_gbps(&self, seconds: f64) -> f64 {
        if seconds > 0.0 {
            self.effective_bytes / seconds / 1e9
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_bytes() {
        assert_eq!(Precision::F32.bytes(), 4.0);
        assert_eq!(Precision::F64.bytes(), 8.0);
    }

    #[test]
    fn achieved_gbps_is_bytes_over_time() {
        let fp = KernelFootprint::streaming("triad", 1 << 20, 24e9, 0.0, Precision::F64);
        assert_eq!(fp.achieved_gbps(2.0), 12.0);
        assert_eq!(fp.achieved_gbps(0.0), 0.0);
    }

    #[test]
    fn stencil_points_and_boundary_detection() {
        let interior = StencilProfile {
            domain: [320, 320, 320],
            radius: [4, 4, 4],
            dats_read: 2,
            dats_written: 1,
        };
        assert_eq!(interior.points(), 320 * 320 * 320);
        assert!(!interior.is_boundary_like());

        let face = StencilProfile {
            domain: [7680, 2, 1],
            radius: [0, 0, 0],
            dats_read: 1,
            dats_written: 1,
        };
        assert!(face.is_boundary_like());
    }

    #[test]
    fn streaming_constructor_and_intensity() {
        let fp = KernelFootprint::streaming(
            "triad",
            1 << 20,
            3.0 * 8.0 * (1 << 20) as f64,
            2.0 * (1 << 20) as f64,
            Precision::F64,
        );
        let ai = fp.intensity();
        assert!((ai - 2.0 / 24.0).abs() < 1e-12);
        assert!(!fp.is_boundary());
    }

    #[test]
    fn tiny_loops_count_as_boundary() {
        let fp = KernelFootprint::streaming("bc", 128, 1024.0, 0.0, Precision::F64);
        assert!(fp.is_boundary());
    }

    #[test]
    fn zero_byte_kernel_has_infinite_intensity() {
        let fp = KernelFootprint::streaming("empty", 1, 0.0, 1.0, Precision::F32);
        assert!(fp.intensity().is_infinite());
    }
}
