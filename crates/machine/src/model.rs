//! The top-level kernel-time predictor.
//!
//! `time = max(memory, compute, atomics) + launch + reduction_overhead`
//!
//! * **memory** — DRAM bytes at (STREAM × efficiency) plus LLC bytes at
//!   LLC bandwidth, from the cache model ([`crate::caches`]).
//! * **compute** — FLOPs at (peak × vector efficiency), plus
//!   transcendentals at an eighth of peak.
//! * **atomics** — atomic updates at the platform's FP-atomic or CAS rate.
//! * **launch** — per-launch backend overhead (×1 per rank; ranks launch
//!   concurrently) plus a latency floor for kernels too small to fill the
//!   machine.
//! * **reduction** — strategy-dependent: native reductions are nearly
//!   free; the user binary-tree fallback the paper had to use on CPUs
//!   multiplies the sweep cost (§4.2 reports 6–7×).

use crate::caches;
use crate::exec::{ExecProfile, ReductionStrategy};
use crate::footprint::{AtomicKind, KernelFootprint};
use crate::platform::{ChipKind, Platform};

/// Calibrated CPU binary-tree reduction penalty (paper §4.2: "reductions
/// take 6-7× more time with SYCL compared to OpenMP").
const CPU_TREE_REDUCTION_PENALTY: f64 = 6.5;
/// GPUs have efficient two-pass reductions; small penalty only.
const GPU_TREE_REDUCTION_PENALTY: f64 = 1.15;

/// Simulated timing breakdown for one kernel launch.
#[derive(Debug, Clone, Copy)]
pub struct KernelTime {
    /// Total simulated seconds for the launch.
    pub total: f64,
    pub memory: f64,
    pub compute: f64,
    pub atomics: f64,
    pub launch: f64,
    pub reduction: f64,
    /// The traffic split the memory term was computed from.
    pub traffic: caches::MemoryTraffic,
}

impl KernelTime {
    /// Effective bandwidth in bytes/s given the paper's effective-bytes
    /// accounting (what OP2 reports per kernel).
    pub fn effective_bandwidth(&self, fp: &KernelFootprint) -> f64 {
        if self.total > 0.0 {
            fp.effective_bytes / self.total
        } else {
            0.0
        }
    }
}

/// Predict the simulated wall-clock time of one kernel launch.
pub fn predict(platform: &Platform, fp: &KernelFootprint, exec: &ExecProfile) -> KernelTime {
    let cache = caches::analyze(platform, fp, exec);
    let traffic = cache.traffic;

    // --- memory term ------------------------------------------------
    let llc = platform.llc();
    let numa = numa_efficiency(platform, exec);
    // Scalar (non-vectorised) CPU code also loses memory throughput:
    // without vector loads a core cannot keep enough requests in flight.
    let vec_mem = if exec.backend.is_host() && exec.vector_efficiency < 0.5 {
        0.6
    } else {
        1.0
    };
    let cg = exec.codegen_efficiency.clamp(0.1, 1.5);
    let sustained = match fp.access {
        crate::footprint::AccessProfile::Streamed => 1.0,
        _ => platform.mem.app_sustained,
    };
    let dram_bw =
        platform.mem.stream_bw * traffic.bandwidth_efficiency * numa * vec_mem * cg * sustained;
    let llc_bw = llc.bandwidth * traffic.bandwidth_efficiency.max(0.2) * vec_mem * cg;
    let memory = traffic.dram_bytes / dram_bw + traffic.llc_bytes / llc_bw;

    // --- compute term -----------------------------------------------
    let peak = platform.peak_flops(fp.precision) * exec.vector_efficiency.clamp(0.01, 1.5) * cg;
    let occupancy_peak = peak * occupancy_for_compute(platform, fp, exec);
    let transc_rate = occupancy_peak / 8.0;
    let compute = fp.flops / occupancy_peak + fp.transcendentals / transc_rate.max(1.0);

    // --- atomics term -----------------------------------------------
    // Codegen quality scales atomic throughput too: better instruction
    // scheduling around the RMWs keeps more of them in flight (this is
    // how OpenSYCL+atomics beats CUDA+atomics on the A100, §4.3).
    let atomics = fp
        .atomics
        .map(|a| {
            let rate = match a.kind {
                AtomicKind::NativeFp if platform.atomics.has_native_fp => {
                    platform.atomics.fp_add_per_s
                }
                _ => platform.atomics.cas_per_s,
            };
            a.updates as f64 / (rate * cg)
        })
        .unwrap_or(0.0);

    // --- launch + latency floor --------------------------------------
    let per_launch = exec.backend.launch_overhead(platform);
    // A kernel cannot finish faster than a few memory round-trips.
    let latency_floor = 4.0 * platform.mem.latency;
    let launch = per_launch + latency_floor;

    // --- reduction overhead -------------------------------------------
    let body = memory.max(compute).max(atomics);
    let reduction = if fp.reductions > 0 {
        match exec.reduction {
            ReductionStrategy::None | ReductionStrategy::Native => {
                // One combine barrier per reduction variable.
                fp.reductions as f64 * 2.0 * per_launch
            }
            ReductionStrategy::UserBinaryTree => {
                let penalty = match platform.chip {
                    ChipKind::Cpu { .. } => CPU_TREE_REDUCTION_PENALTY,
                    ChipKind::Gpu { .. } => GPU_TREE_REDUCTION_PENALTY,
                };
                body * (penalty - 1.0) + fp.reductions as f64 * 2.0 * per_launch
            }
        }
    } else {
        0.0
    };

    let total = body + launch + reduction;
    KernelTime {
        total,
        memory,
        compute,
        atomics,
        launch,
        reduction,
        traffic,
    }
}

/// Occupancy factor applied to the compute term (poor shapes also starve
/// the ALUs, not just the load queues).
fn occupancy_for_compute(platform: &Platform, fp: &KernelFootprint, exec: &ExecProfile) -> f64 {
    match platform.chip {
        ChipKind::Gpu { compute_units, .. } => {
            let wg = exec.workgroup_items() as f64;
            let wgs = (fp.items as f64 / wg.max(1.0)).ceil();
            let in_flight = (wg * 32.0).min(2048.0);
            ((in_flight / 2048.0).min(1.0) * (wgs / compute_units as f64).min(1.0)).clamp(0.02, 1.0)
        }
        ChipKind::Cpu { .. } => 1.0,
    }
}

/// Single-process shared-memory codes lose bandwidth to cross-NUMA
/// traffic; rank-per-domain (MPI, MPI+X) codes do not.
fn numa_efficiency(platform: &Platform, exec: &ExecProfile) -> f64 {
    if let ChipKind::Cpu { numa_domains, .. } = platform.chip {
        if exec.backend.is_host() && exec.ranks == 1 && numa_domains > 1 {
            return (1.0 - 0.06 * (numa_domains as f64 - 1.0)).max(0.8);
        }
    }
    1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::BackendKind;
    use crate::footprint::{AccessProfile, AtomicProfile, Precision, StencilProfile};
    use crate::platform;
    use crate::GB;

    fn triad_fp(n: u64, prec: Precision) -> KernelFootprint {
        KernelFootprint::streaming(
            "triad",
            n,
            3.0 * prec.bytes() * n as f64,
            2.0 * n as f64,
            prec,
        )
    }

    fn plain_exec(backend: BackendKind, wg: [usize; 3]) -> ExecProfile {
        ExecProfile {
            backend,
            workgroup: wg,
            vector_efficiency: 1.0,
            reduction: ReductionStrategy::None,
            codegen_efficiency: 1.0,
            ranks: 1,
        }
    }

    #[test]
    fn triad_on_a100_achieves_near_stream_bandwidth() {
        let a100 = platform::a100();
        let fp = triad_fp(1 << 27, Precision::F64);
        let t = predict(&a100, &fp, &plain_exec(BackendKind::Cuda, [1024, 1, 1]));
        let bw = t.effective_bandwidth(&fp);
        // Large streaming kernel: within 10% of Table 1.
        assert!(
            bw > 0.9 * a100.mem.stream_bw && bw <= a100.mem.stream_bw * 1.01,
            "bw = {} GB/s",
            bw / GB
        );
    }

    #[test]
    fn memory_bound_kernel_is_insensitive_to_flops_until_crossover() {
        let a100 = platform::a100();
        let mut fp = triad_fp(1 << 27, Precision::F64);
        let e = plain_exec(BackendKind::Cuda, [1024, 1, 1]);
        let t0 = predict(&a100, &fp, &e).total;
        fp.flops *= 10.0; // still far below the roofline ridge
        let t1 = predict(&a100, &fp, &e).total;
        assert!((t1 - t0).abs() / t0 < 1e-9);
        fp.flops *= 1e4; // now compute-bound
        let t2 = predict(&a100, &fp, &e).total;
        assert!(t2 > 2.0 * t0);
    }

    #[test]
    fn boundary_kernels_are_launch_dominated_and_worse_on_mi250x() {
        let fp = KernelFootprint {
            name: "update_halo".into(),
            items: 7680,
            effective_bytes: 2.0 * 8.0 * 7680.0,
            flops: 0.0,
            transcendentals: 0.0,
            precision: Precision::F64,
            access: AccessProfile::Stencil(StencilProfile {
                domain: [7680, 2, 1],
                radius: [0, 0, 0],
                dats_read: 1,
                dats_written: 1,
            }),
            atomics: None,
            reductions: 0,
        };
        let a100 = platform::a100();
        let mi = platform::mi250x();
        let ta = predict(&a100, &fp, &plain_exec(BackendKind::Cuda, [256, 1, 1]));
        let tm = predict(&mi, &fp, &plain_exec(BackendKind::Hip, [256, 1, 1]));
        assert!(
            ta.launch > 0.5 * ta.total,
            "launch must dominate tiny loops"
        );
        assert!(tm.total > ta.total, "MI250X pays higher launch latency");
    }

    #[test]
    fn native_fp_atomics_beat_cas_loops() {
        let mi = platform::mi250x();
        let mk = |kind| KernelFootprint {
            name: "flux".into(),
            items: 1 << 22,
            effective_bytes: 48.0 * (1 << 22) as f64,
            flops: 50.0 * (1 << 22) as f64,
            transcendentals: 0.0,
            precision: Precision::F64,
            access: AccessProfile::Streamed,
            atomics: Some(AtomicProfile {
                updates: 10 * (1 << 22) as u64,
                kind,
            }),
            reductions: 0,
        };
        let e = plain_exec(BackendKind::Hip, [256, 1, 1]);
        let fast = predict(&mi, &mk(AtomicKind::NativeFp), &e).total;
        let slow = predict(&mi, &mk(AtomicKind::CasLoop), &e).total;
        // §4.3: OpenSYCL without unsafe atomics got "significantly worse
        // throughput" on the MI250X.
        assert!(slow > 2.0 * fast, "{slow} vs {fast}");
    }

    #[test]
    fn cpu_tree_reductions_cost_6_to_7x() {
        let xeon = platform::xeon8360y();
        let mut fp = triad_fp(1 << 24, Precision::F64);
        fp.reductions = 1;
        let mut native = plain_exec(BackendKind::OmpHost, [1024, 1, 1]);
        native.reduction = ReductionStrategy::Native;
        native.ranks = 2;
        let mut tree = native;
        tree.reduction = ReductionStrategy::UserBinaryTree;
        let tn = predict(&xeon, &fp, &native).total;
        let tt = predict(&xeon, &fp, &tree).total;
        let ratio = tt / tn;
        assert!(
            (5.0..8.5).contains(&ratio),
            "tree/native reduction ratio = {ratio}"
        );
    }

    #[test]
    fn pure_openmp_pays_numa_on_dual_socket_but_mpi_does_not() {
        let genoa = platform::genoax();
        let fp = triad_fp(1 << 26, Precision::F64);
        let mut omp = plain_exec(BackendKind::OmpHost, [1024, 1, 1]);
        omp.ranks = 1;
        let mut mpi = plain_exec(BackendKind::MpiRank, [1024, 1, 1]);
        mpi.ranks = 176;
        let t_omp = predict(&genoa, &fp, &omp).total;
        let t_mpi = predict(&genoa, &fp, &mpi).total;
        assert!(t_omp > t_mpi);
    }

    #[test]
    fn scalar_code_is_slower_than_vectorised_for_compute_heavy_kernels() {
        let altra = platform::altra();
        // High-intensity kernel (8th-order stencil, ~60 flops/point).
        let n = 1u64 << 24;
        let mut fp = KernelFootprint::streaming(
            "acoustic",
            n,
            2.0 * 4.0 * n as f64,
            60.0 * n as f64,
            Precision::F32,
        );
        fp.access = AccessProfile::Stencil(StencilProfile {
            domain: [256, 256, 256],
            radius: [4, 4, 4],
            dats_read: 1,
            dats_written: 1,
        });
        let mut vec = plain_exec(BackendKind::OmpHost, [256, 1, 1]);
        vec.vector_efficiency = 1.0;
        let mut scalar = vec;
        scalar.vector_efficiency = 0.25;
        let tv = predict(&altra, &fp, &vec).total;
        let ts = predict(&altra, &fp, &scalar).total;
        assert!(
            ts > 1.5 * tv,
            "vectorisation failure must hurt: {ts} vs {tv}"
        );
    }

    #[test]
    fn totals_are_finite_positive_and_decomposable() {
        for p in crate::platform::all_platforms() {
            let fp = triad_fp(1 << 20, Precision::F64);
            let backend = BackendKind::native_for(p.id);
            let t = predict(&p, &fp, &plain_exec(backend, [256, 1, 1]));
            assert!(t.total.is_finite() && t.total > 0.0);
            let parts = t.memory.max(t.compute).max(t.atomics) + t.launch + t.reduction;
            assert!((t.total - parts).abs() < 1e-12);
        }
    }
}
