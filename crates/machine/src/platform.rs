//! Descriptions of the six benchmarked platforms.
//!
//! Every number here is taken from the paper (§2 "Test hardware", Table 1,
//! and the cache sizes quoted in §4.1/§4.3) or, where the paper is silent
//! (e.g. L2 bandwidths, launch latencies), from public vendor documentation
//! of the same parts. These are *calibration inputs*, not results.

use crate::{GB, US};

/// Identifier for one of the six benchmarked machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlatformId {
    /// NVIDIA A100 40 GB PCIe.
    A100,
    /// AMD MI250X, a single GCD, as on LUMI.
    Mi250x,
    /// Intel Data Center GPU Max 1100.
    Max1100,
    /// Dual-socket Intel Xeon Platinum 8360Y (Ice Lake), 2×36 cores.
    Xeon8360Y,
    /// Dual-socket AMD EPYC 9V33X (Genoa-X), 2×88 cores, 3D V-Cache.
    GenoaX,
    /// Single-socket Ampere Altra, 64 cores (Azure D64ps v5).
    Altra,
}

impl PlatformId {
    /// Short machine-readable label used in reports and benches.
    pub fn label(self) -> &'static str {
        match self {
            PlatformId::A100 => "a100",
            PlatformId::Mi250x => "mi250x",
            PlatformId::Max1100 => "max1100",
            PlatformId::Xeon8360Y => "xeon8360y",
            PlatformId::GenoaX => "genoax",
            PlatformId::Altra => "altra",
        }
    }

    /// Parse a label as produced by [`PlatformId::label`].
    pub fn parse(s: &str) -> Option<PlatformId> {
        Some(match s {
            "a100" => PlatformId::A100,
            "mi250x" => PlatformId::Mi250x,
            "max1100" => PlatformId::Max1100,
            "xeon8360y" => PlatformId::Xeon8360Y,
            "genoax" => PlatformId::GenoaX,
            "altra" => PlatformId::Altra,
            _ => return None,
        })
    }

    /// True for the three GPU platforms.
    pub fn is_gpu(self) -> bool {
        matches!(
            self,
            PlatformId::A100 | PlatformId::Mi250x | PlatformId::Max1100
        )
    }
}

/// Processor organisation.
#[derive(Debug, Clone, Copy)]
pub enum ChipKind {
    /// Multicore CPU (possibly multi-socket).
    Cpu {
        /// Sockets in the node.
        sockets: usize,
        /// Physical cores per socket.
        cores_per_socket: usize,
        /// NUMA domains in the node.
        numa_domains: usize,
        /// f64 lanes per SIMD unit (AVX-512 = 8, NEON = 2).
        simd_f64_lanes: usize,
        /// Sustained all-core clock in GHz.
        freq_ghz: f64,
    },
    /// Massively-parallel GPU.
    Gpu {
        /// Compute units (SMs / CUs / Xe-cores).
        compute_units: usize,
        /// SIMT lanes per compute unit.
        lanes_per_cu: usize,
        /// Boost clock in GHz.
        freq_ghz: f64,
    },
}

impl ChipKind {
    /// Total hardware parallel lanes (cores or CUs×lanes).
    pub fn total_lanes(&self) -> usize {
        match *self {
            ChipKind::Cpu {
                sockets,
                cores_per_socket,
                simd_f64_lanes,
                ..
            } => sockets * cores_per_socket * simd_f64_lanes,
            ChipKind::Gpu {
                compute_units,
                lanes_per_cu,
                ..
            } => compute_units * lanes_per_cu,
        }
    }

    /// Physical cores (CPU) or compute units (GPU).
    pub fn cores(&self) -> usize {
        match *self {
            ChipKind::Cpu {
                sockets,
                cores_per_socket,
                ..
            } => sockets * cores_per_socket,
            ChipKind::Gpu { compute_units, .. } => compute_units,
        }
    }
}

/// One level of the cache hierarchy.
#[derive(Debug, Clone, Copy)]
pub struct CacheLevel {
    /// 1, 2, or 3.
    pub level: u8,
    /// Total capacity in bytes across the chip.
    pub size_bytes: f64,
    /// Cache line size in bytes.
    pub line_bytes: f64,
    /// Aggregate bandwidth of this level in bytes/s.
    pub bandwidth: f64,
}

/// Main-memory characteristics.
#[derive(Debug, Clone, Copy)]
pub struct MemorySystem {
    /// Achieved STREAM-Triad bandwidth (paper Table 1), bytes/s.
    pub stream_bw: f64,
    /// Main-memory access latency in seconds.
    pub latency: f64,
    /// Fraction of STREAM that real (stencil/indirect) applications
    /// sustain — 1.0 on most parts; the Max 1100's low-clocked L2
    /// fabric caps real kernels well below its STREAM figure (its best
    /// paper efficiency is 82 % where the A100 reaches 92 %).
    pub app_sustained: f64,
}

/// Atomic-operation throughput.
#[derive(Debug, Clone, Copy)]
pub struct AtomicsSpec {
    /// Hardware floating-point atomic adds per second ("unsafe"/native).
    pub fp_add_per_s: f64,
    /// CAS-loop atomic updates per second (the "safe" path, and the only
    /// path on CPUs).
    pub cas_per_s: f64,
    /// Whether the fast FP path exists at all.
    pub has_native_fp: bool,
}

/// A complete platform description.
#[derive(Debug, Clone)]
pub struct Platform {
    pub id: PlatformId,
    /// Human-readable name as used in the paper.
    pub name: &'static str,
    pub chip: ChipKind,
    pub mem: MemorySystem,
    /// Host↔device interconnect bandwidth in bytes/s (`None` for CPUs —
    /// host memory *is* device memory).  Legacy scalar kept for the
    /// `eager_transfers()` free-transfer escape hatch; new code prices
    /// through [`interconnect`](Platform::interconnect).
    pub interconnect_bw: Option<f64>,
    /// Direction- and allocation-aware link model (the second tier of the
    /// cost hierarchy next to the STREAM roofs).
    pub interconnect: crate::interconnect::Interconnect,
    /// Cache hierarchy, outermost (last-level) first.
    pub caches: Vec<CacheLevel>,
    /// Native kernel-launch / parallel-region overhead in seconds.
    pub native_launch: f64,
    pub atomics: AtomicsSpec,
    /// Peak FP32 throughput, FLOP/s.
    pub fp32_flops: f64,
    /// Peak FP64 throughput, FLOP/s.
    pub fp64_flops: f64,
}

impl Platform {
    /// Last-level (largest) cache.
    pub fn llc(&self) -> CacheLevel {
        *self
            .caches
            .first()
            .expect("platforms always have at least one cache level")
    }

    /// Peak FLOP/s for the given precision.
    pub fn peak_flops(&self, prec: crate::footprint::Precision) -> f64 {
        match prec {
            crate::footprint::Precision::F32 => self.fp32_flops,
            crate::footprint::Precision::F64 => self.fp64_flops,
        }
    }

    /// Look up a platform model by id.
    pub fn get(id: PlatformId) -> Platform {
        match id {
            PlatformId::A100 => a100(),
            PlatformId::Mi250x => mi250x(),
            PlatformId::Max1100 => max1100(),
            PlatformId::Xeon8360Y => xeon8360y(),
            PlatformId::GenoaX => genoax(),
            PlatformId::Altra => altra(),
        }
    }
}

/// All six platforms in the paper's presentation order.
pub fn all_platforms() -> Vec<Platform> {
    vec![a100(), mi250x(), max1100(), xeon8360y(), genoax(), altra()]
}

/// NVIDIA A100 40 GB PCIe: 108 SMs @ 1.41 GHz, 19.49 FP32 TFLOP/s,
/// STREAM 1310 GB/s, 40 MB L2.
pub fn a100() -> Platform {
    Platform {
        id: PlatformId::A100,
        name: "NVIDIA A100 40GB",
        chip: ChipKind::Gpu {
            compute_units: 108,
            lanes_per_cu: 64,
            freq_ghz: 1.41,
        },
        mem: MemorySystem {
            stream_bw: 1310.0 * GB,
            latency: 400.0e-9,
            app_sustained: 1.0,
        },
        interconnect_bw: Some(25.0 * GB),
        interconnect: crate::interconnect::Interconnect::pcie4(),
        caches: vec![
            CacheLevel {
                level: 2,
                size_bytes: 40.0e6,
                line_bytes: 32.0,
                bandwidth: 4500.0 * GB,
            },
            CacheLevel {
                level: 1,
                size_bytes: 108.0 * 192.0e3,
                line_bytes: 32.0,
                bandwidth: 19000.0 * GB,
            },
        ],
        native_launch: 6.0 * US,
        atomics: AtomicsSpec {
            // L2-resident FP atomics stream at close to memory rate —
            // this is why SYCL/CUDA atomics are the *fastest* MG-CFD
            // scheme on the A100 (paper Fig. 8).
            fp_add_per_s: 150.0e9,
            cas_per_s: 20.0e9,
            has_native_fp: true,
        },
        fp32_flops: 19.49e12,
        fp64_flops: 9.7e12,
    }
}

/// AMD MI250X, one GCD: 110 CUs @ 1.7 GHz, 23.95 FP32 TFLOP/s, STREAM
/// 1290 GB/s, 16 MB L2 (the figure the paper uses when contrasting cache
/// capacities). Kernel launch latency is notably higher than the A100 —
/// the paper attributes the larger boundary-loop fractions to it.
pub fn mi250x() -> Platform {
    Platform {
        id: PlatformId::Mi250x,
        name: "AMD MI250X (1 GCD)",
        chip: ChipKind::Gpu {
            compute_units: 110,
            lanes_per_cu: 64,
            freq_ghz: 1.7,
        },
        mem: MemorySystem {
            stream_bw: 1290.0 * GB,
            latency: 500.0e-9,
            app_sustained: 1.0,
        },
        interconnect_bw: Some(36.0 * GB),
        interconnect: crate::interconnect::Interconnect::infinity_fabric(),
        caches: vec![
            CacheLevel {
                level: 2,
                size_bytes: 16.0e6,
                line_bytes: 64.0,
                bandwidth: 3500.0 * GB,
            },
            CacheLevel {
                level: 1,
                size_bytes: 110.0 * 16.0e3,
                line_bytes: 64.0,
                bandwidth: 11000.0 * GB,
            },
        ],
        native_launch: 14.0 * US,
        atomics: AtomicsSpec {
            // "Unsafe" FP atomics are fast; the "safe" CAS path (all
            // OpenSYCL could reach, §4.3) is an order of magnitude off.
            fp_add_per_s: 100.0e9,
            cas_per_s: 22.0e9,
            has_native_fp: true,
        },
        fp32_flops: 23.95e12,
        fp64_flops: 23.95e12,
    }
}

/// Intel Data Center GPU Max 1100: 56 Xe-cores @ 1.55 GHz, STREAM
/// 803 GB/s, and — decisive for the paper's results — a 208 MB L2.
pub fn max1100() -> Platform {
    Platform {
        id: PlatformId::Max1100,
        name: "Intel Data Center GPU Max 1100",
        chip: ChipKind::Gpu {
            compute_units: 56,
            lanes_per_cu: 128,
            freq_ghz: 1.55,
        },
        mem: MemorySystem {
            stream_bw: 803.0 * GB,
            latency: 450.0e-9,
            app_sustained: 0.82,
        },
        interconnect_bw: Some(25.0 * GB),
        interconnect: crate::interconnect::Interconnect::pcie5(),
        caches: vec![
            CacheLevel {
                level: 2,
                size_bytes: 208.0e6,
                line_bytes: 64.0,
                bandwidth: 3200.0 * GB,
            },
            CacheLevel {
                level: 1,
                size_bytes: 56.0 * 512.0e3,
                line_bytes: 64.0,
                bandwidth: 8000.0 * GB,
            },
        ],
        native_launch: 4.0 * US,
        atomics: AtomicsSpec {
            // §4.3: "Atomics throughput in the Max 1100 appears to be
            // the limiting factor".
            fp_add_per_s: 40.0e9,
            cas_per_s: 8.0e9,
            has_native_fp: true,
        },
        fp32_flops: 22.2e12,
        fp64_flops: 11.1e12,
    }
}

/// Dual-socket Intel Xeon Platinum 8360Y (Ice Lake): 2×36 cores @ 2.4–2.8
/// GHz, AVX-512, STREAM 296 GB/s, 54 MB L3 per socket.
pub fn xeon8360y() -> Platform {
    Platform {
        id: PlatformId::Xeon8360Y,
        name: "Intel Xeon Platinum 8360Y (2S)",
        chip: ChipKind::Cpu {
            sockets: 2,
            cores_per_socket: 36,
            numa_domains: 2,
            simd_f64_lanes: 8,
            freq_ghz: 2.6,
        },
        mem: MemorySystem {
            stream_bw: 296.0 * GB,
            latency: 90.0e-9,
            app_sustained: 1.0,
        },
        interconnect_bw: None,
        interconnect: crate::interconnect::Interconnect::in_package(296.0 * GB),
        caches: vec![
            CacheLevel {
                level: 3,
                size_bytes: 2.0 * 54.0e6,
                line_bytes: 64.0,
                bandwidth: 900.0 * GB,
            },
            CacheLevel {
                level: 2,
                size_bytes: 72.0 * 1.25e6,
                line_bytes: 64.0,
                bandwidth: 2400.0 * GB,
            },
        ],
        native_launch: 3.0 * US,
        atomics: AtomicsSpec {
            // Uncontended CAS ≈ 0.4 G/s per core, aggregated.
            fp_add_per_s: 72.0 * 0.4e9,
            cas_per_s: 72.0 * 0.4e9,
            has_native_fp: false,
        },
        fp32_flops: 12.0e12,
        fp64_flops: 6.0e12,
    }
}

/// Dual-socket AMD EPYC 9V33X "Genoa-X": 2×88 cores @ 2.4–3.7 GHz,
/// AVX-512 (double-pumped), STREAM 561 GB/s, and 2×1.1 GB of stacked L3 —
/// the cache that produces the paper's >100 % "efficiency" results.
pub fn genoax() -> Platform {
    Platform {
        id: PlatformId::GenoaX,
        name: "AMD EPYC 9V33X Genoa-X (2S)",
        chip: ChipKind::Cpu {
            sockets: 2,
            cores_per_socket: 88,
            numa_domains: 4,
            simd_f64_lanes: 8,
            freq_ghz: 2.55,
        },
        mem: MemorySystem {
            stream_bw: 561.0 * GB,
            latency: 100.0e-9,
            app_sustained: 1.0,
        },
        interconnect_bw: None,
        interconnect: crate::interconnect::Interconnect::in_package(561.0 * GB),
        caches: vec![
            CacheLevel {
                level: 3,
                size_bytes: 2.0 * 1.1e9,
                line_bytes: 64.0,
                // Sustained, not peak: V-cache streaming bandwidth is
                // roughly 2× DRAM in practice.
                bandwidth: 1200.0 * GB,
            },
            CacheLevel {
                level: 2,
                size_bytes: 176.0 * 1.0e6,
                line_bytes: 64.0,
                bandwidth: 5200.0 * GB,
            },
        ],
        native_launch: 4.0 * US,
        atomics: AtomicsSpec {
            fp_add_per_s: 176.0 * 0.4e9,
            cas_per_s: 176.0 * 0.4e9,
            has_native_fp: false,
        },
        fp32_flops: 11.7e12,
        fp64_flops: 5.85e12,
    }
}

/// Single-socket Ampere Altra: 64 Neoverse-N1 cores @ 3.0 GHz, 2×128-bit
/// NEON, STREAM 167 GB/s, 32 MB system-level cache, single NUMA node.
pub fn altra() -> Platform {
    Platform {
        id: PlatformId::Altra,
        name: "Ampere Altra (1S)",
        chip: ChipKind::Cpu {
            sockets: 1,
            cores_per_socket: 64,
            numa_domains: 1,
            simd_f64_lanes: 2,
            freq_ghz: 3.0,
        },
        mem: MemorySystem {
            stream_bw: 167.0 * GB,
            latency: 110.0e-9,
            app_sustained: 1.0,
        },
        interconnect_bw: None,
        interconnect: crate::interconnect::Interconnect::in_package(167.0 * GB),
        caches: vec![
            CacheLevel {
                level: 3,
                size_bytes: 32.0e6,
                line_bytes: 64.0,
                bandwidth: 500.0 * GB,
            },
            CacheLevel {
                level: 2,
                size_bytes: 64.0 * 1.0e6,
                line_bytes: 64.0,
                bandwidth: 1500.0 * GB,
            },
        ],
        native_launch: 3.0 * US,
        atomics: AtomicsSpec {
            fp_add_per_s: 64.0 * 0.3e9,
            cas_per_s: 64.0 * 0.3e9,
            has_native_fp: false,
        },
        fp32_flops: 3.0e12,
        fp64_flops: 1.5e12,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_stream_bandwidths_match_the_paper() {
        // Paper Table 1, GB/s.
        let expect = [
            (PlatformId::Mi250x, 1290.0),
            (PlatformId::A100, 1310.0),
            (PlatformId::Max1100, 803.0),
            (PlatformId::Xeon8360Y, 296.0),
            (PlatformId::GenoaX, 561.0),
            (PlatformId::Altra, 167.0),
        ];
        for (id, gbs) in expect {
            let p = Platform::get(id);
            assert!(
                (p.mem.stream_bw / GB - gbs).abs() < 1e-9,
                "{}: {} GB/s",
                p.name,
                p.mem.stream_bw / GB
            );
        }
    }

    #[test]
    fn cache_capacity_ordering_matches_the_papers_narrative() {
        // §4.1: Max 1100 L2 (208 MB) > A100 L2 (40 MB) > MI250X L2 (16 MB);
        // §4.3: Genoa-X L3 = 2 × 1.1 GB dwarfs everything.
        let llc = |id| Platform::get(id).llc().size_bytes;
        assert!(llc(PlatformId::Max1100) > llc(PlatformId::A100));
        assert!(llc(PlatformId::A100) > llc(PlatformId::Mi250x));
        assert!(llc(PlatformId::GenoaX) > llc(PlatformId::Max1100));
    }

    #[test]
    fn labels_round_trip() {
        for p in all_platforms() {
            assert_eq!(PlatformId::parse(p.id.label()), Some(p.id));
        }
        assert_eq!(PlatformId::parse("notamachine"), None);
    }

    #[test]
    fn gpu_flag_is_correct() {
        assert!(PlatformId::A100.is_gpu());
        assert!(PlatformId::Mi250x.is_gpu());
        assert!(PlatformId::Max1100.is_gpu());
        assert!(!PlatformId::Xeon8360Y.is_gpu());
        assert!(!PlatformId::GenoaX.is_gpu());
        assert!(!PlatformId::Altra.is_gpu());
    }

    #[test]
    fn launch_latency_mi250x_exceeds_a100_and_max() {
        // §4.1: boundary loops cost more on the MI250X "due to higher
        // kernel launch latencies"; the Max 1100 spends the least time
        // in boundary computations.
        assert!(mi250x().native_launch > a100().native_launch);
        assert!(max1100().native_launch < a100().native_launch);
    }

    #[test]
    fn paper_fp32_peaks_are_respected() {
        assert!((a100().fp32_flops - 19.49e12).abs() < 1e9);
        assert!((mi250x().fp32_flops - 23.95e12).abs() < 1e9);
        assert!((altra().fp32_flops - 3.0e12).abs() < 1e9);
    }

    #[test]
    fn total_lanes_are_positive_and_gpu_exceeds_cpu() {
        let gpu = a100().chip.total_lanes();
        let cpu = xeon8360y().chip.total_lanes();
        assert!(gpu > cpu);
        for p in all_platforms() {
            assert!(p.chip.total_lanes() > 0);
            assert!(p.chip.cores() > 0);
        }
    }
}
