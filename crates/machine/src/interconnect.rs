//! Host↔device interconnect models.
//!
//! The compute side of the machine model prices kernels against STREAM
//! roofs; this module is the second tier of that hierarchy: a per-platform
//! description of the link data crosses to *reach* the device.  The oneAPI
//! `bandwidthTest` sample shows the three axes that matter and that a
//! single scalar bandwidth cannot express:
//!
//! * **direction** — H2D and D2H sustain different rates on real PCIe
//!   parts (write-posting vs read-completion credits);
//! * **pageable vs pinned** — pageable copies are staged through a driver
//!   bounce buffer and run at roughly half the pinned rate;
//! * **D2D** — on-device copies run near the memory-system rate, one to
//!   two orders of magnitude above the link.
//!
//! CPUs get an interconnect too: host memory *is* device memory, so a
//! "transfer" is an in-package `memcpy` priced at roughly half the STREAM
//! rate (one read + one write stream) with a sub-microsecond setup cost.
//! That keeps transfer nodes meaningfully priced on all six platforms
//! while preserving the intuition that staging is near-free on CPUs
//! relative to a PCIe hop.

use crate::{GB, US};

/// Direction of a host↔device copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferDir {
    /// Host to device (upload).
    H2D,
    /// Device to host (download / readback).
    D2H,
    /// Device to device (on-device copy, or GCD↔GCD over the in-package
    /// fabric).
    D2D,
}

impl TransferDir {
    /// Short lowercase label used in manifests and dashboards.
    pub fn label(self) -> &'static str {
        match self {
            TransferDir::H2D => "h2d",
            TransferDir::D2H => "d2h",
            TransferDir::D2D => "d2d",
        }
    }
}

/// Sustained bandwidth of one link direction, split by host allocation
/// kind (bytes/s).
#[derive(Debug, Clone, Copy)]
pub struct LinkBandwidth {
    /// Ordinary `malloc`ed host memory — staged through a driver bounce
    /// buffer on discrete devices.
    pub pageable: f64,
    /// Page-locked host memory — the DMA engine reads it directly.
    pub pinned: f64,
}

impl LinkBandwidth {
    /// A direction where the allocation kind makes no difference
    /// (in-package links).
    pub fn flat(bw: f64) -> Self {
        LinkBandwidth {
            pageable: bw,
            pinned: bw,
        }
    }
}

/// A calibrated host↔device link descriptor.
#[derive(Debug, Clone)]
pub struct Interconnect {
    /// Link technology, for reports ("PCIe 4.0 x16", "Infinity Fabric",
    /// "in-package").
    pub link: &'static str,
    /// Per-copy setup latency in seconds (driver + DMA descriptor +
    /// completion), paid once per transfer regardless of size.
    pub latency: f64,
    /// Host-to-device bandwidth.
    pub h2d: LinkBandwidth,
    /// Device-to-host bandwidth.
    pub d2h: LinkBandwidth,
    /// Device-to-device copy bandwidth (bytes/s, counting bytes moved
    /// once, as `bandwidthTest` reports it).
    pub d2d: f64,
}

impl Interconnect {
    /// Sustained bandwidth for a direction and host-allocation kind.
    pub fn bandwidth(&self, dir: TransferDir, pinned: bool) -> f64 {
        let link = match dir {
            TransferDir::H2D => self.h2d,
            TransferDir::D2H => self.d2h,
            TransferDir::D2D => return self.d2d,
        };
        if pinned {
            link.pinned
        } else {
            link.pageable
        }
    }

    /// Modelled wall time of one copy: `latency + bytes / bandwidth`.
    pub fn transfer_time(&self, dir: TransferDir, pinned: bool, bytes: f64) -> f64 {
        self.latency + bytes / self.bandwidth(dir, pinned)
    }

    /// A PCIe 4.0 x16 link (A100): ~25 GB/s pinned, pageable at roughly
    /// the bounce-buffer rate.
    pub fn pcie4() -> Self {
        Interconnect {
            link: "PCIe 4.0 x16",
            latency: 10.0 * US,
            h2d: LinkBandwidth {
                pageable: 11.0 * GB,
                pinned: 25.0 * GB,
            },
            d2h: LinkBandwidth {
                pageable: 10.0 * GB,
                pinned: 24.0 * GB,
            },
            d2d: 1160.0 * GB,
        }
    }

    /// The MI250X's Infinity Fabric host link (~36 GB/s pinned); D2D is
    /// the single-GCD on-device copy rate.
    pub fn infinity_fabric() -> Self {
        Interconnect {
            link: "Infinity Fabric",
            latency: 9.0 * US,
            h2d: LinkBandwidth {
                pageable: 14.0 * GB,
                pinned: 36.0 * GB,
            },
            d2h: LinkBandwidth {
                pageable: 13.0 * GB,
                pinned: 34.0 * GB,
            },
            d2d: 1100.0 * GB,
        }
    }

    /// A PCIe 5.0 x16 link as the Max 1100 presents it (host software
    /// stack sustains ~25 GB/s pinned despite the wider lane budget).
    pub fn pcie5() -> Self {
        Interconnect {
            link: "PCIe 5.0 x16",
            latency: 11.0 * US,
            h2d: LinkBandwidth {
                pageable: 12.0 * GB,
                pinned: 25.0 * GB,
            },
            d2h: LinkBandwidth {
                pageable: 11.0 * GB,
                pinned: 23.0 * GB,
            },
            d2d: 680.0 * GB,
        }
    }

    /// CPU "interconnect": host memory is device memory, so a transfer is
    /// an in-package `memcpy` — one read plus one write stream, i.e. half
    /// the STREAM copy rate, with no pageable/pinned distinction.
    pub fn in_package(stream_bw: f64) -> Self {
        Interconnect {
            link: "in-package",
            latency: 0.5 * US,
            h2d: LinkBandwidth::flat(stream_bw / 2.0),
            d2h: LinkBandwidth::flat(stream_bw / 2.0),
            d2d: stream_bw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_platforms;

    #[test]
    fn pinned_beats_pageable_on_discrete_links_and_ties_in_package() {
        for p in all_platforms() {
            let ic = &p.interconnect;
            for dir in [TransferDir::H2D, TransferDir::D2H] {
                let pinned = ic.bandwidth(dir, true);
                let pageable = ic.bandwidth(dir, false);
                if p.id.is_gpu() {
                    assert!(
                        pinned > 1.5 * pageable,
                        "{}: pinned {dir:?} should be an integer factor above pageable",
                        p.name
                    );
                } else {
                    assert_eq!(pinned, pageable, "{}: in-package links are flat", p.name);
                }
            }
        }
    }

    #[test]
    fn transfers_cost_nonzero_time_on_every_platform() {
        for p in all_platforms() {
            for dir in [TransferDir::H2D, TransferDir::D2H, TransferDir::D2D] {
                for pinned in [false, true] {
                    let t = p.interconnect.transfer_time(dir, pinned, 1.0e6);
                    assert!(
                        t > 0.0 && t.is_finite(),
                        "{} {dir:?} pinned={pinned} priced at {t}",
                        p.name
                    );
                }
            }
        }
    }

    #[test]
    fn d2d_is_far_above_the_host_link_on_gpus() {
        for p in all_platforms().into_iter().filter(|p| p.id.is_gpu()) {
            let ic = &p.interconnect;
            assert!(
                ic.d2d > 10.0 * ic.bandwidth(TransferDir::H2D, true),
                "{}: D2D should dwarf the host link",
                p.name
            );
        }
    }

    #[test]
    fn pinned_h2d_matches_the_legacy_scalar_bandwidth_on_gpus() {
        // The pre-interconnect model priced transfers at
        // `10 us + bytes / interconnect_bw`; the pinned H2D curve is that
        // scalar's successor and must stay anchored to the same calibration.
        for p in all_platforms().into_iter().filter(|p| p.id.is_gpu()) {
            let legacy = p.interconnect_bw.expect("GPUs keep the legacy scalar");
            assert_eq!(
                p.interconnect.h2d.pinned, legacy,
                "{}: pinned H2D drifted from the calibrated link rate",
                p.name
            );
        }
    }

    #[test]
    fn latency_dominates_small_copies_and_bandwidth_dominates_large() {
        let ic = Interconnect::pcie4();
        let small = ic.transfer_time(TransferDir::H2D, true, 8.0);
        assert!(
            (small - ic.latency) / small < 0.01,
            "8 B copy is all latency"
        );
        let large = ic.transfer_time(TransferDir::H2D, true, 1.0e9);
        assert!(
            (large - 1.0e9 / ic.h2d.pinned) / large < 0.01,
            "1 GB copy is all bandwidth"
        );
    }
}
