//! # machine-model — calibrated performance models of six HPC platforms
//!
//! The paper measured seven bandwidth-bound applications on three GPUs
//! (NVIDIA A100 40 GB, AMD MI250X single GCD, Intel Data Center GPU Max
//! 1100) and three CPUs (Intel Xeon Platinum 8360Y, AMD EPYC 9V33X
//! "Genoa-X", Ampere Altra). None of that hardware (nor SYCL) is available
//! to this reproduction, so this crate provides *analytic, calibrated*
//! models of those machines: enough fidelity that the paper's qualitative
//! results — who wins, by what factor, where the crossovers fall — emerge
//! from mechanism rather than from hard-coded answers.
//!
//! The modelling chain is:
//!
//! 1. The DSL layer describes each kernel launch with a [`KernelFootprint`]:
//!    compulsory DRAM bytes (computed with the paper's own §4.3
//!    effective-bandwidth accounting), FLOPs, iteration-space shape, stencil
//!    radii, atomic counts, indirect-access locality descriptors.
//! 2. The SYCL runtime simulation picks an [`ExecProfile`] — backend kind,
//!    work-group shape, vectorisation efficiency, reduction strategy —
//!    according to the toolchain being modelled.
//! 3. [`predict`](model::predict) combines platform + footprint + profile
//!    into a simulated kernel time:
//!    `max(memory, compute, atomics) + launch + reduction`.
//!
//! The memory term uses a layer-condition cache model (Stengel et al.-style)
//! so that cache-capacity effects the paper highlights — the Max 1100's
//! 208 MB L2, Genoa-X's 2×1.1 GB L3, MI250X's small 16 MB L2 — shape the
//! results the same way they did on the real machines.

pub mod caches;
pub mod exec;
pub mod footprint;
pub mod interconnect;
pub mod model;
pub mod platform;
pub mod roofline;

pub use caches::{CacheOutcome, MemoryTraffic};
pub use exec::{BackendKind, ExecProfile, ReductionStrategy};
pub use footprint::{
    AccessProfile, AtomicKind, AtomicProfile, IndirectProfile, KernelFootprint, Precision,
    StencilProfile,
};
pub use interconnect::{Interconnect, LinkBandwidth, TransferDir};
pub use model::{predict, KernelTime};
pub use platform::{all_platforms, ChipKind, Platform, PlatformId};
pub use roofline::{roofline_text, Bound, RooflinePoint};

/// Gigabytes-per-second to bytes-per-second.
pub const GB: f64 = 1.0e9;
/// Microseconds to seconds.
pub const US: f64 = 1.0e-6;
