//! Minimal `parking_lot`-style wrappers over `std::sync`.
//!
//! The pool's locking protocol wants the ergonomics of `parking_lot`
//! (no poison handling, `Condvar::wait(&mut guard)`), but the workspace
//! builds offline with the standard library alone. These wrappers keep
//! the call sites identical: poisoning is swallowed (a panicked region
//! already re-throws through its own payload channel, so a poisoned
//! mutex carries no extra information).

use std::sync::PoisonError;

/// A mutex whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`]. Holds the inner std guard in an
/// `Option` so [`Condvar::wait`] can temporarily take ownership of it.
pub struct MutexGuard<'a, T>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Try to acquire the lock without blocking; `None` if contended.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present outside wait")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable that re-locks through [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically release the guard's lock and wait for a notification.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present outside wait");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let flag = Arc::new(AtomicBool::new(false));
        let (s2, f2) = (Arc::clone(&shared), Arc::clone(&flag));
        let t = std::thread::spawn(move || {
            let mut ready = s2.0.lock();
            while !*ready {
                s2.1.wait(&mut ready);
            }
            f2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        *shared.0.lock() = true;
        shared.1.notify_all();
        t.join().unwrap();
        assert!(flag.load(Ordering::SeqCst));
    }
}
