//! Bulk-synchronous thread pool.
//!
//! The pool executes one *parallel region* at a time (launches from the DSL
//! layer are always serialised through a queue, so this matches the usage
//! pattern). A region is described by a chunk count and a closure; with
//! [`Schedule::Dynamic`] workers and the calling thread drain chunk indices
//! from an atomic cursor, with [`Schedule::Static`] each lane owns a fixed
//! contiguous span of chunk indices (no cursor contention).
//!
//! Wakeup is spin-then-park: workers watch a lock-free epoch hint for a
//! bounded number of spin iterations before parking on the condvar, so
//! back-to-back regions (the steady state of a bandwidth-bound app run)
//! avoid the sleep/wake round-trip entirely.

use crate::sync::{Condvar, Mutex};
use std::mem::MaybeUninit;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::thread::JoinHandle;

/// Spin iterations a worker burns watching the epoch hint before parking.
const SPIN_BEFORE_PARK: u32 = 1 << 12;

/// Spin iterations the caller burns watching completion before parking.
const SPIN_BEFORE_JOIN: u32 = 1 << 12;

/// Process-unique, nonzero id for the calling thread (0 means "no owner"
/// in [`ThreadPool::region_owner`]).
fn thread_token() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TOKEN: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TOKEN.with(|t| *t)
}

/// Configuration for a [`ThreadPool`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Total parallel lanes, including the calling thread. Minimum 1.
    pub lanes: usize,
    /// Base name for worker threads (suffixed with the worker index).
    pub thread_name: String,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            lanes: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            thread_name: "parkit-worker".to_owned(),
        }
    }
}

/// How chunk indices are assigned to lanes within a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// Lanes drain a shared atomic cursor (work-stealing-ish, load-balanced).
    #[default]
    Dynamic,
    /// Each lane owns a fixed near-equal contiguous span of chunks (the
    /// OpenMP `schedule(static)` shape). Best for uniform chunk costs:
    /// zero cursor contention and reproducible lane→chunk affinity.
    Static,
}

/// A handle to an in-flight parallel region.
///
/// Lives on the caller's stack; workers reach it through a raw pointer that
/// is only published while the caller is blocked waiting for completion, so
/// the borrow can never dangle.
struct Region {
    /// Next chunk index to execute (dynamic schedule only).
    cursor: AtomicUsize,
    /// Chunks fully executed.
    completed: AtomicUsize,
    /// Total chunks in the region.
    n_chunks: usize,
    /// Lane count used for the static span split; 0 means dynamic.
    static_lanes: usize,
    /// Workers currently inside the region body.
    active: AtomicUsize,
    /// Set if any chunk panicked; the payload of the first panic is kept.
    panicked: AtomicBool,
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// When the region span started (ns since the trace epoch); 0 when
    /// telemetry is disabled. Used to derive steal-latency histograms.
    born_ns: u64,
    /// The chunk body: called with (lane, chunk_index). The 'static here is
    /// a lie told via transmute; the completion barrier in `run_region`
    /// guarantees the real borrow outlives all uses.
    body: &'static (dyn Fn(usize, usize) + Sync),
}

// SAFETY: `body` points into the caller's stack frame, which outlives the
// region because the caller blocks until `active == 0 && completed ==
// n_chunks` before returning. The Fn is Sync so shared calls are fine.
unsafe impl Send for Region {}
unsafe impl Sync for Region {}

struct Slot {
    /// Monotonic id of the region currently (or last) published.
    epoch: u64,
    /// Pointer to the live region, if one is accepting workers.
    region: Option<*const Region>,
    shutdown: bool,
}

// SAFETY: the raw pointer is only dereferenced while the publishing caller
// is blocked (see `Region`).
unsafe impl Send for Slot {}

struct Shared {
    slot: Mutex<Slot>,
    /// Lock-free mirror of `Slot::epoch`, stored under the slot lock.
    /// Workers spin on this before falling back to the condvar.
    epoch_hint: AtomicU64,
    /// Workers wait here for a new epoch.
    work_ready: Condvar,
    /// The caller waits here for region completion.
    region_done: Condvar,
}

/// A bulk-synchronous pool of worker threads; see module docs.
pub struct ThreadPool {
    shared: std::sync::Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    lanes: usize,
    /// Reusable word-aligned scratch for reduction partials, so steady-state
    /// `reduce` calls allocate nothing once the arena has grown.
    arena: Mutex<Vec<u64>>,
    /// Token of the thread currently entitled to publish regions (0 = no
    /// owner). Held either for the duration of one `run_region*` call or
    /// across many of them by a [`RegionHandle`].
    region_owner: AtomicU64,
    /// True while the owning thread has a region published; only ever
    /// written by the owner, so relaxed ordering suffices. Nested
    /// `run_region*` calls from inside a region body see it set and fall
    /// back to inline execution instead of clobbering the slot.
    owner_in_region: AtomicBool,
}

/// Exclusive claim on a pool's worker lanes; see [`ThreadPool::reserve`].
///
/// While a handle is held, `run_region*` calls from the owning thread are
/// serviced by the workers as usual, and calls from every other thread
/// fall back to inline execution on their own stack. Dropping the handle
/// releases the claim.
pub struct RegionHandle<'p> {
    pool: &'p ThreadPool,
}

impl Drop for RegionHandle<'_> {
    fn drop(&mut self) {
        self.pool.region_owner.store(0, Ordering::Release);
    }
}

impl ThreadPool {
    /// Create a pool with `lanes` total parallel lanes (including the
    /// calling thread). `lanes == 1` runs everything inline.
    pub fn new(lanes: usize) -> Self {
        Self::with_config(PoolConfig {
            lanes,
            ..PoolConfig::default()
        })
    }

    /// Create a pool from an explicit [`PoolConfig`].
    pub fn with_config(cfg: PoolConfig) -> Self {
        let lanes = cfg.lanes.max(1);
        let shared = std::sync::Arc::new(Shared {
            slot: Mutex::new(Slot {
                epoch: 0,
                region: None,
                shutdown: false,
            }),
            epoch_hint: AtomicU64::new(0),
            work_ready: Condvar::new(),
            region_done: Condvar::new(),
        });
        let workers = (1..lanes)
            .map(|lane| {
                let shared = std::sync::Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("{}-{}", cfg.thread_name, lane))
                    .spawn(move || worker_loop(&shared, lane))
                    .expect("failed to spawn parkit worker")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            lanes,
            arena: Mutex::new(Vec::new()),
            region_owner: AtomicU64::new(0),
            owner_in_region: AtomicBool::new(false),
        }
    }

    /// Total parallel lanes (workers + the calling thread).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Claim the worker lanes for the calling thread, spinning (with
    /// periodic yields) until the current owner releases them.
    ///
    /// A shard replaying a launch graph takes one handle for the whole
    /// replay so its regions run back-to-back under a single claim
    /// instead of contending per region; other shards' regions execute
    /// inline on their own submitter threads in the meantime (work-
    /// conserving, and bit-identical for reductions because partials are
    /// combined by a fixed tree regardless of who ran the chunks).
    ///
    /// Claims are not reentrant: a thread that already owns the lanes
    /// (including from inside a region body) must not call `reserve`
    /// again — doing so would deadlock on its own claim.
    pub fn reserve(&self) -> RegionHandle<'_> {
        let me = thread_token();
        debug_assert_ne!(
            self.region_owner.load(Ordering::Relaxed),
            me,
            "ThreadPool::reserve is not reentrant"
        );
        let mut spins = 0u32;
        while self
            .region_owner
            .compare_exchange(0, me, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            spins += 1;
            if spins >= SPIN_BEFORE_JOIN {
                spins = 0;
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        RegionHandle { pool: self }
    }

    /// Execute `n_chunks` invocations of `body(lane, chunk)` across the
    /// pool, dynamically scheduled. Blocks until every chunk has run.
    ///
    /// Panics that occur inside `body` are re-thrown here after the region
    /// drains, so the pool stays usable.
    pub fn run_region<F>(&self, n_chunks: usize, body: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        self.run_region_sched(n_chunks, Schedule::Dynamic, body);
    }

    /// [`ThreadPool::run_region`] with an explicit [`Schedule`].
    pub fn run_region_sched<F>(&self, n_chunks: usize, sched: Schedule, body: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        if n_chunks == 0 {
            return;
        }
        // One branch when telemetry is off; a RegionSpan otherwise.
        let span = telemetry::SpanTimer::start();
        if self.lanes == 1 || n_chunks == 1 {
            // Inline fast path: no publication, no synchronisation.
            for chunk in 0..n_chunks {
                body(0, chunk);
            }
            finish_region_span(span, sched, n_chunks);
            return;
        }

        // Claim the worker lanes. A thread that already owns them (via
        // `reserve`) publishes without re-acquiring; anyone else — a
        // different thread whose region is in flight, or a nested call
        // from inside a region body — runs every chunk inline on its own
        // stack. The inline fallback is work-conserving, and reductions
        // stay bit-identical because per-chunk partials are combined by a
        // fixed tree regardless of which thread produced them.
        let me = thread_token();
        let acquired = if self.region_owner.load(Ordering::Relaxed) == me {
            if self.owner_in_region.load(Ordering::Relaxed) {
                for chunk in 0..n_chunks {
                    body(0, chunk);
                }
                finish_region_span(span, sched, n_chunks);
                return;
            }
            false
        } else if self
            .region_owner
            .compare_exchange(0, me, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            true
        } else {
            for chunk in 0..n_chunks {
                body(0, chunk);
            }
            finish_region_span(span, sched, n_chunks);
            return;
        };
        self.owner_in_region.store(true, Ordering::Relaxed);

        let wide: &(dyn Fn(usize, usize) + Sync) = &body;
        // SAFETY: lifetime erasure only; `run_region_sched` blocks until
        // every worker has exited the region before `body` goes out of scope.
        let wide: &'static (dyn Fn(usize, usize) + Sync) = unsafe { std::mem::transmute(wide) };
        let region = Region {
            cursor: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            n_chunks,
            static_lanes: match sched {
                Schedule::Dynamic => 0,
                Schedule::Static => self.lanes,
            },
            active: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            panic_payload: Mutex::new(None),
            born_ns: span.as_ref().map(|s| s.start_ns()).unwrap_or(0),
            body: wide,
        };

        {
            let mut slot = self.shared.slot.lock();
            slot.epoch += 1;
            slot.region = Some(&region as *const Region);
            // Mirror the epoch outside the lock so spinning workers see it
            // without contending; published before notify so parked workers
            // cannot observe the condvar signal ahead of the hint.
            self.shared.epoch_hint.store(slot.epoch, Ordering::Release);
            self.shared.work_ready.notify_all();
        }

        // The caller is lane 0.
        drain_region(&region, 0);

        let done = || {
            region.active.load(Ordering::Acquire) == 0
                && region.completed.load(Ordering::Acquire) == n_chunks
        };
        match sched {
            Schedule::Dynamic => {
                // Unpublish first (no new adopters), then spin briefly for
                // stragglers mid-chunk before parking on the condvar.
                {
                    let mut slot = self.shared.slot.lock();
                    slot.region = None;
                }
                let mut spins = 0u32;
                while !done() && spins < SPIN_BEFORE_JOIN {
                    spins += 1;
                    std::hint::spin_loop();
                }
                if !done() {
                    let mut slot = self.shared.slot.lock();
                    while !done() {
                        self.shared.region_done.wait(&mut slot);
                    }
                }
            }
            Schedule::Static => {
                // Every lane owns chunks, so the region must stay published
                // until every worker has adopted and drained its span; only
                // then is it safe to retire the pointer.
                let mut spins = 0u32;
                while !done() && spins < SPIN_BEFORE_JOIN {
                    spins += 1;
                    std::hint::spin_loop();
                }
                let mut slot = self.shared.slot.lock();
                while !done() {
                    self.shared.region_done.wait(&mut slot);
                }
                slot.region = None;
            }
        }

        // Release the claim before the panic check so a panicking region
        // never leaks ownership (a leaked claim would force every later
        // region from other threads down the inline path forever).
        self.owner_in_region.store(false, Ordering::Relaxed);
        if acquired {
            self.region_owner.store(0, Ordering::Release);
        }

        if region.panicked.load(Ordering::Acquire) {
            let payload = region
                .panic_payload
                .lock()
                .take()
                .unwrap_or_else(|| Box::new("panic in parkit region"));
            resume_unwind(payload);
        }
        finish_region_span(span, sched, n_chunks);
    }

    /// Parallel loop over `0..total` in chunks of at most `grain`,
    /// invoking `f(start, end)` for each chunk.
    pub fn for_range<F>(&self, total: usize, grain: usize, f: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        let grain = grain.max(1);
        let n_chunks = total.div_ceil(grain);
        self.run_region(n_chunks, |_lane, chunk| {
            let start = chunk * grain;
            let end = (start + grain).min(total);
            f(start, end);
        });
    }

    /// Statically-scheduled parallel loop: `0..total` is split into
    /// exactly `lanes()` near-equal spans, one per lane (the OpenMP
    /// `schedule(static)` shape — NUMA-friendly first-touch order).
    pub fn for_range_static<F>(&self, total: usize, f: F)
    where
        F: Fn(usize, usize, usize) + Sync,
    {
        let lanes = self.lanes;
        self.run_region_sched(lanes, Schedule::Static, |_lane, part| {
            let (start, end) = crate::range::split_evenly(total, lanes, part);
            if start < end {
                f(part, start, end);
            }
        });
    }

    /// Parallel mutation of a slice in contiguous chunks of at most
    /// `grain` elements; `f(start_index, chunk)`.
    pub fn for_each_chunk<T, F>(&self, data: &mut [T], grain: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let total = data.len();
        let base = crate::slice::SendPtr(data.as_mut_ptr());
        self.for_range(total, grain, move |start, end| {
            // SAFETY: [start, end) ranges from `for_range` are disjoint and
            // within bounds, so each chunk is exclusively borrowed.
            let chunk =
                unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
            f(start, chunk);
        });
    }

    /// Deterministic parallel reduction over `0..total`.
    ///
    /// `map` folds one chunk's index range into a partial; partials are
    /// combined in a fixed pairwise tree (see [`crate::tree_combine`]),
    /// making the result independent of scheduling.
    pub fn reduce<T, M, C>(&self, total: usize, grain: usize, identity: T, combine: C, map: M) -> T
    where
        T: Send + Clone,
        M: Fn(std::ops::Range<usize>) -> T + Sync,
        C: Fn(T, T) -> T + Sync,
    {
        let grain = grain.max(1);
        let n_chunks = total.div_ceil(grain);
        self.reduce_chunks(n_chunks, identity, combine, |chunk| {
            let start = chunk * grain;
            let end = (start + grain).min(total);
            map(start..end)
        })
    }

    /// Deterministic reduction over explicit chunk indices `0..n_chunks`;
    /// `map_chunk` folds one chunk into a partial. Partials live in the
    /// pool's reusable arena, so the steady state allocates nothing.
    ///
    /// On panic inside `map_chunk`, already-produced partials are leaked
    /// (not dropped) before the panic is re-thrown; partial types are
    /// plain values (`f64`, small structs) throughout this workspace.
    pub fn reduce_chunks<T, M, C>(
        &self,
        n_chunks: usize,
        identity: T,
        combine: C,
        map_chunk: M,
    ) -> T
    where
        T: Send + Clone,
        M: Fn(usize) -> T + Sync,
        C: Fn(T, T) -> T + Sync,
    {
        if n_chunks == 0 {
            return identity;
        }
        let words = (n_chunks * std::mem::size_of::<T>()).div_ceil(std::mem::size_of::<u64>());

        // The arena is word-aligned; types needing stricter alignment (none
        // in this workspace) fall back to a fresh allocation, as does the
        // rare case of a contended arena (overlapping reduce from another
        // thread on the same pool).
        let mut guard = if std::mem::align_of::<T>() <= std::mem::align_of::<u64>() {
            self.arena.try_lock()
        } else {
            None
        };
        let mut fallback: Vec<u64> = Vec::new();
        let storage: &mut Vec<u64> = match guard.as_mut() {
            Some(g) => &mut *g,
            None => &mut fallback,
        };
        storage.clear();
        storage.reserve(words);
        let base = storage.as_mut_ptr() as *mut MaybeUninit<T>;

        let slots = crate::slice::SendPtr(base);
        self.run_region(n_chunks, |_lane, chunk| {
            // SAFETY: each chunk index is visited exactly once, indices are
            // in-bounds of the reserved arena, and the stride is the array
            // stride of `T` (arena alignment checked above).
            unsafe {
                slots
                    .get()
                    .add(chunk)
                    .write(MaybeUninit::new(map_chunk(chunk)))
            };
        });
        crate::reduce::tree_combine(
            // SAFETY: every slot was initialised exactly once by the region
            // (a panic would have propagated out of `run_region` above) and
            // each value is read out exactly once here.
            (0..n_chunks).map(|i| unsafe { base.add(i).read().assume_init() }),
            identity,
            &combine,
        )
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock();
            slot.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared, lane: usize) {
    let mut last_epoch = 0u64;
    loop {
        // Spin phase: watch the lock-free epoch mirror. A new epoch (or a
        // burnt budget) drops us into the locked protocol below, which
        // remains the single source of truth.
        let mut spins = 0u32;
        while shared.epoch_hint.load(Ordering::Acquire) == last_epoch && spins < SPIN_BEFORE_PARK {
            spins += 1;
            std::hint::spin_loop();
        }
        let region_ptr = {
            let mut slot = shared.slot.lock();
            let mut parked = false;
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.epoch != last_epoch {
                    if let Some(ptr) = slot.region {
                        last_epoch = slot.epoch;
                        if parked && telemetry::enabled() {
                            telemetry::Counters::add(&telemetry::counters().wakes, 1);
                        }
                        // Adopt under the lock so the caller can observe us
                        // via `active` before we touch the region unlocked.
                        // SAFETY: region is live while published.
                        unsafe { (*ptr).active.fetch_add(1, Ordering::AcqRel) };
                        break ptr;
                    }
                    // Region already retired; skip this epoch.
                    last_epoch = slot.epoch;
                }
                if telemetry::enabled() {
                    telemetry::Counters::add(&telemetry::counters().parks, 1);
                }
                parked = true;
                shared.work_ready.wait(&mut slot);
            }
        };
        // SAFETY: `active` was incremented under the lock; the caller will
        // not free the region until we decrement it again.
        let region = unsafe { &*region_ptr };
        drain_region(region, lane);
        {
            let _slot = shared.slot.lock();
            region.active.fetch_sub(1, Ordering::AcqRel);
            shared.region_done.notify_all();
        }
    }
}

fn drain_region(region: &Region, lane: usize) {
    if region.static_lanes > 0 {
        let (lo, hi) = crate::range::split_evenly(region.n_chunks, region.static_lanes, lane);
        for chunk in lo..hi {
            run_chunk(region, lane, chunk);
        }
        return;
    }
    let mut claimed = 0u64;
    loop {
        let chunk = region.cursor.fetch_add(1, Ordering::Relaxed);
        if chunk >= region.n_chunks {
            break;
        }
        if claimed == 0 && lane != 0 && region.born_ns > 0 {
            // Publish-to-first-claim latency of this worker lane: how
            // long work sat on the cursor before a thief arrived.
            let lat_ns = telemetry::now_ns().saturating_sub(region.born_ns);
            metrics::registry().record("pool.steal_latency_us", lat_ns as f64 / 1_000.0);
        }
        claimed += 1;
        run_chunk(region, lane, chunk);
    }
    // Chunks a worker lane pulled off the shared cursor were "stolen"
    // from the calling thread's plate; one batched bump per drain.
    if lane != 0 && claimed > 0 && telemetry::enabled() {
        telemetry::Counters::add(&telemetry::counters().steals, claimed);
    }
}

/// Close a region's telemetry span, bump the region counter, and feed
/// the per-region chunk-count histogram (scheduler-health dashboards).
fn finish_region_span(span: Option<telemetry::SpanTimer>, sched: Schedule, n_chunks: usize) {
    if let Some(t) = span {
        telemetry::Counters::add(&telemetry::counters().regions, 1);
        let (name, label) = match sched {
            Schedule::Dynamic => ("pool.region.dynamic", "dynamic"),
            Schedule::Static => ("pool.region.static", "static"),
        };
        metrics::registry().record_labelled("pool.chunks_per_region", label, n_chunks as f64);
        t.finish(telemetry::SpanKind::Region, name, n_chunks as u64, 0.0);
    }
}

fn run_chunk(region: &Region, lane: usize, chunk: usize) {
    let body = region.body;
    let result = catch_unwind(AssertUnwindSafe(|| body(lane, chunk)));
    if let Err(payload) = result {
        if !region.panicked.swap(true, Ordering::AcqRel) {
            *region.panic_payload.lock() = Some(payload);
        }
    }
    region.completed.fetch_add(1, Ordering::AcqRel);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_chunk_exactly_once() {
        let pool = ThreadPool::new(4);
        let hits = (0..97).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
        pool.run_region(97, |_lane, chunk| {
            hits[chunk].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn static_schedule_runs_every_chunk_exactly_once() {
        let pool = ThreadPool::new(4);
        for n_chunks in [1usize, 2, 3, 4, 7, 97] {
            let hits = (0..n_chunks)
                .map(|_| AtomicUsize::new(0))
                .collect::<Vec<_>>();
            pool.run_region_sched(n_chunks, Schedule::Static, |_lane, chunk| {
                hits[chunk].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "static schedule missed chunks at n_chunks={n_chunks}"
            );
        }
    }

    #[test]
    fn static_schedule_pins_chunks_to_their_lane() {
        let lanes = 4;
        let n_chunks = 17;
        let pool = ThreadPool::new(lanes);
        let seen_lane: Vec<AtomicUsize> = (0..n_chunks)
            .map(|_| AtomicUsize::new(usize::MAX))
            .collect();
        pool.run_region_sched(n_chunks, Schedule::Static, |lane, chunk| {
            seen_lane[chunk].store(lane, Ordering::Relaxed);
        });
        for lane in 0..lanes {
            let (lo, hi) = crate::range::split_evenly(n_chunks, lanes, lane);
            for seen in &seen_lane[lo..hi] {
                assert_eq!(seen.load(Ordering::Relaxed), lane);
            }
        }
    }

    #[test]
    fn single_lane_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let sum = AtomicU64::new(0);
        pool.run_region(10, |lane, chunk| {
            assert_eq!(lane, 0);
            sum.fetch_add(chunk as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn for_range_covers_whole_domain_without_overlap() {
        let pool = ThreadPool::new(3);
        let marks = (0..1000).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
        pool.for_range(1000, 33, |start, end| {
            for m in &marks[start..end] {
                m.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(marks.iter().all(|m| m.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn for_each_chunk_writes_disjointly() {
        let pool = ThreadPool::new(8);
        let mut v = vec![0usize; 4096];
        pool.for_each_chunk(&mut v, 100, |start, chunk| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = start + i;
            }
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i));
    }

    #[test]
    fn static_schedule_partitions_exactly_once_per_lane() {
        let pool = ThreadPool::new(5);
        let marks = (0..1001).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
        let lanes_seen = (0..5).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
        pool.for_range_static(1001, |lane, s, e| {
            lanes_seen[lane].fetch_add(1, Ordering::Relaxed);
            for m in &marks[s..e] {
                m.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(marks.iter().all(|m| m.load(Ordering::Relaxed) == 1));
        assert!(lanes_seen.iter().all(|l| l.load(Ordering::Relaxed) <= 1));
    }

    #[test]
    fn reduce_is_deterministic_across_pool_sizes() {
        let data: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let mut answers = vec![];
        for lanes in [1, 2, 3, 8] {
            let pool = ThreadPool::new(lanes);
            let s = pool.reduce(
                data.len(),
                137,
                0.0f64,
                |a, b| a + b,
                |r| r.map(|i| data[i]).sum::<f64>(),
            );
            answers.push(s.to_bits());
        }
        assert!(
            answers.windows(2).all(|w| w[0] == w[1]),
            "deterministic reduction must not depend on lane count"
        );
    }

    #[test]
    fn repeated_reduce_reuses_the_arena_and_stays_bit_identical() {
        let data: Vec<f64> = (0..50_000).map(|i| (i as f64).cos()).collect();
        let pool = ThreadPool::new(4);
        let run = || {
            pool.reduce(
                data.len(),
                512,
                0.0f64,
                |a, b| a + b,
                |r| r.map(|i| data[i]).sum::<f64>(),
            )
            .to_bits()
        };
        let first = run();
        for _ in 0..100 {
            assert_eq!(run(), first);
        }
    }

    #[test]
    fn reduce_chunks_matches_manual_tree() {
        let pool = ThreadPool::new(3);
        let got = pool.reduce_chunks(9, 0u64, |a, b| a + b, |c| (c as u64 + 1) * 10);
        let partials: Vec<u64> = (0..9).map(|c| (c as u64 + 1) * 10).collect();
        let expect = crate::reduce::tree_combine(partials, 0, &|a, b| a + b);
        assert_eq!(got, expect);
        assert_eq!(got, 450);
    }

    #[test]
    fn panics_propagate_and_pool_survives() {
        let pool = ThreadPool::new(4);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_region(64, |_l, chunk| {
                if chunk == 13 {
                    panic!("boom");
                }
            });
        }));
        assert!(caught.is_err());
        // Pool must still work afterwards.
        let n = AtomicUsize::new(0);
        pool.run_region(64, |_l, _c| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn panics_propagate_from_static_regions_too() {
        let pool = ThreadPool::new(4);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_region_sched(64, Schedule::Static, |_l, chunk| {
                if chunk == 63 {
                    panic!("boom");
                }
            });
        }));
        assert!(caught.is_err());
        let n = AtomicUsize::new(0);
        pool.run_region_sched(64, Schedule::Static, |_l, _c| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn zero_chunks_is_a_no_op() {
        let pool = ThreadPool::new(2);
        pool.run_region(0, |_l, _c| panic!("must not run"));
    }

    #[test]
    fn regions_emit_telemetry_when_enabled() {
        telemetry::TelemetryConfig::enabled().install();
        let before = telemetry::counters().snapshot();
        let pool = ThreadPool::new(3);
        pool.run_region(61, |_l, _c| {});
        pool.run_region_sched(61, Schedule::Static, |_l, _c| {});
        let delta = telemetry::counters().snapshot().since(&before);
        let regions: Vec<_> = telemetry::flush()
            .into_iter()
            .filter(|e| e.items == 61 && e.kind == telemetry::SpanKind::Region)
            .collect();
        telemetry::TelemetryConfig::disabled().install();
        assert!(delta.regions >= 2);
        assert!(regions.len() >= 2, "one RegionSpan per region");
        assert!(regions
            .iter()
            .any(|e| e.name.as_str() == "pool.region.dynamic"));
        assert!(regions
            .iter()
            .any(|e| e.name.as_str() == "pool.region.static"));
    }

    #[test]
    fn back_to_back_regions_reuse_workers() {
        let pool = ThreadPool::new(4);
        for round in 0..50 {
            let n = AtomicUsize::new(0);
            pool.run_region(round + 1, |_l, _c| {
                n.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(n.load(Ordering::Relaxed), round + 1);
        }
    }

    #[test]
    fn concurrent_regions_from_many_threads_all_complete() {
        // Only one thread can own the workers at a time; the rest fall
        // back to inline execution. Every submitter must still see all
        // of its own chunks run exactly once.
        let pool = ThreadPool::new(4);
        std::thread::scope(|s| {
            for _ in 0..6 {
                s.spawn(|| {
                    for round in 0..40 {
                        let n = AtomicUsize::new(0);
                        pool.run_region(round + 2, |_l, _c| {
                            n.fetch_add(1, Ordering::Relaxed);
                        });
                        assert_eq!(n.load(Ordering::Relaxed), round + 2);
                    }
                });
            }
        });
    }

    #[test]
    fn nested_regions_run_inline_without_clobbering_the_outer() {
        let pool = ThreadPool::new(4);
        let outer = AtomicUsize::new(0);
        let inner = AtomicUsize::new(0);
        pool.run_region(8, |_l, _c| {
            outer.fetch_add(1, Ordering::Relaxed);
            pool.run_region(5, |lane, _c| {
                assert_eq!(lane, 0, "nested regions must run inline on the caller");
                inner.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(outer.load(Ordering::Relaxed), 8);
        assert_eq!(inner.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn reserve_diverts_other_threads_and_keeps_the_owner_pooled() {
        let pool = ThreadPool::new(4);
        let handle = pool.reserve();
        // Another thread's region completes inline while the claim is held.
        std::thread::scope(|s| {
            s.spawn(|| {
                let n = AtomicUsize::new(0);
                pool.run_region(16, |lane, _c| {
                    assert_eq!(lane, 0, "non-owner regions must run inline");
                    n.fetch_add(1, Ordering::Relaxed);
                });
                assert_eq!(n.load(Ordering::Relaxed), 16);
            });
        });
        // The owner's own regions still use the workers.
        let n = AtomicUsize::new(0);
        pool.run_region(64, |_l, _c| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 64);
        drop(handle);
        // Released: another thread can claim and run pooled again.
        std::thread::scope(|s| {
            s.spawn(|| {
                let _h = pool.reserve();
                let n = AtomicUsize::new(0);
                pool.run_region(32, |_l, _c| {
                    n.fetch_add(1, Ordering::Relaxed);
                });
                assert_eq!(n.load(Ordering::Relaxed), 32);
            });
        });
    }

    #[test]
    fn contended_reduce_stays_bit_identical() {
        let data: Vec<f64> = (0..20_000).map(|i| (i as f64).sin()).collect();
        let pool = ThreadPool::new(4);
        let expect = pool
            .reduce(
                data.len(),
                137,
                0.0f64,
                |a, b| a + b,
                |r| r.map(|i| data[i]).sum::<f64>(),
            )
            .to_bits();
        // Inline-fallback reductions (claim held elsewhere) must combine
        // the same partials through the same tree.
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..20 {
                        let got = pool
                            .reduce(
                                data.len(),
                                137,
                                0.0f64,
                                |a, b| a + b,
                                |r| r.map(|i| data[i]).sum::<f64>(),
                            )
                            .to_bits();
                        assert_eq!(got, expect);
                    }
                });
            }
        });
    }

    #[test]
    fn mixed_schedules_back_to_back() {
        let pool = ThreadPool::new(4);
        for round in 0..50 {
            let sched = if round % 2 == 0 {
                Schedule::Dynamic
            } else {
                Schedule::Static
            };
            let n = AtomicUsize::new(0);
            pool.run_region_sched(round + 2, sched, |_l, _c| {
                n.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(n.load(Ordering::Relaxed), round + 2);
        }
    }
}
