//! Deterministic combination of reduction partials.

/// Combine an ordered sequence of partials in a fixed pairwise tree.
///
/// The tree shape depends only on the number of partials, never on thread
/// timing, so floating-point reductions are bit-reproducible for a given
/// chunking. This is exactly the "user-defined binary tree reduction" the
/// paper fell back to when SYCL 2020 built-in reductions were unavailable.
pub fn tree_combine<T, C>(partials: impl IntoIterator<Item = T>, identity: T, combine: &C) -> T
where
    T: Clone,
    C: Fn(T, T) -> T,
{
    let mut level: Vec<T> = partials.into_iter().collect();
    if level.is_empty() {
        return identity;
    }
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(combine(a, b)),
                None => next.push(a),
            }
        }
        level = next;
    }
    level.pop().expect("non-empty level")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_yields_identity() {
        let r = tree_combine(std::iter::empty::<i32>(), 42, &|a, b| a + b);
        assert_eq!(r, 42);
    }

    #[test]
    fn tree_matches_sequential_for_associative_ops() {
        let xs: Vec<u64> = (1..=100).collect();
        let tree = tree_combine(xs.iter().copied(), 0, &|a, b| a + b);
        assert_eq!(tree, 5050);
        let max = tree_combine(xs.iter().copied(), 0, &|a, b| a.max(b));
        assert_eq!(max, 100);
    }

    #[test]
    fn tree_order_is_fixed() {
        // Record the combine order with strings; it must be the balanced
        // pairwise pattern (0,1)(2,3).. independent of anything else.
        let parts = vec![
            "a".to_owned(),
            "b".into(),
            "c".into(),
            "d".into(),
            "e".into(),
        ];
        let r = tree_combine(parts, String::new(), &|a, b| format!("({a}{b})"));
        assert_eq!(r, "(((ab)(cd))e)");
    }

    #[test]
    fn float_tree_is_reproducible() {
        let xs: Vec<f64> = (0..1023).map(|i| (i as f64 * 0.37).cos()).collect();
        let a = tree_combine(xs.iter().copied(), 0.0, &|a, b| a + b);
        let b = tree_combine(xs.iter().copied(), 0.0, &|a, b| a + b);
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
