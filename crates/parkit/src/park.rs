//! Token-based thread parking: the slow half of spin-then-park.
//!
//! A [`Parker`] is a one-token binary semaphore for a single thread.
//! [`Parker::unpark`] posts the token; [`Parker::park`] consumes it,
//! blocking until one is available. Tokens do not accumulate — many
//! `unpark`s before a `park` still release exactly one `park` — which
//! is exactly the hand-off shape a wait queue needs: the waker flips
//! the waiter's state, then posts the token; the waiter re-reads its
//! state after every wakeup.
//!
//! The fast path is a single atomic swap. A parking thread first burns
//! a bounded spin (the pool's workers use the same spin-then-park
//! pattern on their epoch hint) so a token posted within ~a microsecond
//! never touches the mutex; only after the spin does it take the
//! fallback `Mutex`+`Condvar` and sleep.
//!
//! Memory ordering: `unpark` swaps the state with `Release`; `park`
//! consumes the token with `Acquire`. Everything the waking thread did
//! before `unpark` is therefore visible to the parked thread after
//! `park` returns — callers can publish plain data before the unpark
//! and read it after the park without extra fences.

use crate::sync::{Condvar, Mutex};
use std::sync::atomic::{AtomicU32, Ordering};

/// No token, nobody asleep.
const EMPTY: u32 = 0;
/// A token is available; the next `park` returns immediately.
const NOTIFIED: u32 = 1;
/// A thread is asleep on the condvar.
const PARKED: u32 = 2;

/// Spin iterations `park` burns polling for a token before sleeping.
const SPIN_BEFORE_PARK: u32 = 1 << 12;

/// A one-token, one-thread parking primitive (see module docs).
///
/// Only one thread may call [`park`](Parker::park) at a time; any
/// number of threads may call [`unpark`](Parker::unpark).
#[derive(Debug, Default)]
pub struct Parker {
    state: AtomicU32,
    lock: Mutex<()>,
    cvar: Condvar,
}

impl Parker {
    /// A parker with no pending token.
    pub const fn new() -> Parker {
        Parker {
            state: AtomicU32::new(EMPTY),
            lock: Mutex::new(()),
            cvar: Condvar::new(),
        }
    }

    /// Block the calling thread until a token is available, then
    /// consume it. Returns immediately if `unpark` already ran.
    pub fn park(&self) {
        // Fast path: token already posted.
        if self.try_consume() {
            return;
        }
        // Spin phase: a token posted promptly never touches the mutex.
        // Yield periodically so the unparking thread can run even on a
        // machine with fewer cores than runnable threads.
        for i in 0..SPIN_BEFORE_PARK {
            if i % 256 == 255 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
            if self.try_consume() {
                return;
            }
        }
        // Sleep phase. The state transition to PARKED and the condvar
        // wait both happen under the lock, and `unpark` takes the same
        // lock before notifying, so a token posted between our CAS and
        // our wait cannot be missed.
        let mut guard = self.lock.lock();
        loop {
            match self
                .state
                .compare_exchange(EMPTY, PARKED, Ordering::Relaxed, Ordering::Acquire)
            {
                Ok(_) => {}
                // Token arrived while we took the lock: consume and go.
                Err(_) => {
                    self.state.store(EMPTY, Ordering::Relaxed);
                    return;
                }
            }
            while self.state.load(Ordering::Acquire) == PARKED {
                self.cvar.wait(&mut guard);
            }
            // NOTIFIED: consume the token and leave.
            if self
                .state
                .compare_exchange(NOTIFIED, EMPTY, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Post the token, waking the parked thread if there is one.
    /// Idempotent: posting onto an existing token is a no-op.
    pub fn unpark(&self) {
        // Release so the woken thread sees everything we wrote first.
        if self.state.swap(NOTIFIED, Ordering::Release) == PARKED {
            // The waiter is (or is about to be) on the condvar. Taking
            // the lock orders this notify after its wait registration.
            drop(self.lock.lock());
            self.cvar.notify_one();
        }
    }

    /// Consume a pending token without blocking.
    fn try_consume(&self) -> bool {
        self.state
            .compare_exchange(NOTIFIED, EMPTY, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn unpark_before_park_returns_immediately() {
        let p = Parker::new();
        p.unpark();
        p.park(); // must not block
    }

    #[test]
    fn tokens_do_not_accumulate() {
        let p = Arc::new(Parker::new());
        p.unpark();
        p.unpark();
        p.park(); // consumes the single token
        let p2 = Arc::clone(&p);
        let woke = Arc::new(AtomicUsize::new(0));
        let w2 = Arc::clone(&woke);
        let t = std::thread::spawn(move || {
            p2.park();
            w2.store(1, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(woke.load(Ordering::SeqCst), 0, "second park must block");
        p.unpark();
        t.join().unwrap();
        assert_eq!(woke.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn ping_pong_never_loses_a_wakeup() {
        // Two threads strictly alternate via a parker each. Any lost
        // token deadlocks the test (caught by the harness timeout).
        const ROUNDS: usize = 10_000;
        let a = Arc::new(Parker::new());
        let b = Arc::new(Parker::new());
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = std::thread::spawn(move || {
            for _ in 0..ROUNDS {
                a2.park();
                b2.unpark();
            }
        });
        for _ in 0..ROUNDS {
            a.unpark();
            b.park();
        }
        t.join().unwrap();
    }

    #[test]
    fn park_sees_writes_before_unpark() {
        let p = Arc::new(Parker::new());
        let data = Arc::new(AtomicUsize::new(0));
        let (p2, d2) = (Arc::clone(&p), Arc::clone(&data));
        let t = std::thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            p2.unpark();
        });
        p.park();
        assert_eq!(data.load(Ordering::Relaxed), 42);
        t.join().unwrap();
    }
}
