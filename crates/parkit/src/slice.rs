//! Unsafe-but-encapsulated helpers for disjoint concurrent writes.

/// A raw pointer that asserts Send/Sync so it can be captured by a
/// parallel-region closure. Safe use requires the caller to guarantee
/// disjoint index ranges per lane, which the pool's chunking provides.
pub(crate) struct SendPtr<T>(pub *mut T);

impl<T> Copy for SendPtr<T> {}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}

// SAFETY: callers only dereference disjoint ranges (see `for_each_chunk`).
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Method (not field) access, so edition-2021 closures capture the
    /// whole `SendPtr` rather than the raw pointer field, keeping the
    /// closure `Sync`.
    pub(crate) fn get(self) -> *mut T {
        self.0
    }
}

/// Shared view of a slice allowing each index to be written by exactly one
/// chunk. Used for reduction partials and per-chunk scratch output.
///
/// This is the "one writer per slot" pattern: the slice is borrowed mutably
/// for the lifetime of the view, so no other access can exist, and the
/// caller promises each `write(i, ..)` index is unique across the region.
pub struct DisjointSlices<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: the caller contract (unique index per writer) makes concurrent
// writes race-free; T: Send moves values across lanes.
unsafe impl<T: Send> Send for DisjointSlices<'_, T> {}
unsafe impl<T: Send> Sync for DisjointSlices<'_, T> {}

impl<'a, T: Send> DisjointSlices<'a, T> {
    /// Wrap a mutable slice for disjoint per-index writes.
    pub fn new(slice: &'a mut [T]) -> Self {
        DisjointSlices {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when there are no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Store `value` into slot `index`.
    ///
    /// # Safety
    /// Each `index` must be written by at most one lane during the region,
    /// and `index < len()`.
    pub unsafe fn write(&self, index: usize, value: T) {
        debug_assert!(index < self.len);
        // SAFETY: per the contract above this is the sole writer of `index`.
        unsafe { self.ptr.add(index).write(value) };
    }

    /// Get a mutable reference to slot `index`.
    ///
    /// # Safety
    /// Same contract as [`DisjointSlices::write`]: exclusive per-index use.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, index: usize) -> &mut T {
        debug_assert!(index < self.len);
        // SAFETY: sole accessor of `index` per the contract.
        unsafe { &mut *self.ptr.add(index) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadPool;

    #[test]
    fn disjoint_writes_land_in_their_slots() {
        let pool = ThreadPool::new(4);
        let mut out = vec![0usize; 257];
        let view = DisjointSlices::new(&mut out);
        pool.run_region(257, |_lane, chunk| unsafe {
            view.write(chunk, chunk * 3);
        });
        assert!(out.iter().enumerate().all(|(i, &x)| x == i * 3));
    }

    #[test]
    fn len_reports_slot_count() {
        let mut v = vec![1, 2, 3];
        let view = DisjointSlices::new(&mut v);
        assert_eq!(view.len(), 3);
        assert!(!view.is_empty());
    }
}
