//! Index-range chunking and 2D/3D tiling helpers.
//!
//! The DSLs decompose iteration spaces into tiles before handing them to the
//! pool; the tile shapes also feed the cache model (a tile is the analogue
//! of a SYCL work-group).

/// Iterator over `[start, end)` chunk boundaries of width `grain`.
#[derive(Debug, Clone)]
pub struct Chunks {
    next: usize,
    total: usize,
    grain: usize,
}

impl Chunks {
    /// Chunk `0..total` into pieces of at most `grain` elements.
    pub fn new(total: usize, grain: usize) -> Self {
        Chunks {
            next: 0,
            total,
            grain: grain.max(1),
        }
    }

    /// Number of chunks this iterator yields in total.
    pub fn count_chunks(total: usize, grain: usize) -> usize {
        total.div_ceil(grain.max(1))
    }
}

impl Iterator for Chunks {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        if self.next >= self.total {
            return None;
        }
        let start = self.next;
        let end = (start + self.grain).min(self.total);
        self.next = end;
        Some((start, end))
    }
}

/// Split `0..total` into exactly `parts` nearly-equal contiguous spans
/// (sizes differ by at most one). Returns `(start, end)` for `part`.
///
/// This is the static (OpenMP `schedule(static)`) decomposition used by
/// the MPI-rank and NUMA-domain models.
pub fn split_evenly(total: usize, parts: usize, part: usize) -> (usize, usize) {
    assert!(parts > 0 && part < parts);
    let base = total / parts;
    let rem = total % parts;
    let start = part * base + part.min(rem);
    let len = base + usize::from(part < rem);
    (start, start + len)
}

/// A rectangular 2D tile `[x0, x1) × [y0, y1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile2 {
    pub x0: usize,
    pub x1: usize,
    pub y0: usize,
    pub y1: usize,
}

impl Tile2 {
    /// Points in the tile.
    pub fn len(&self) -> usize {
        (self.x1 - self.x0) * (self.y1 - self.y0)
    }

    /// True if the tile covers no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tile an `nx × ny` domain into tiles of shape `(tx, ty)`, returning
    /// the tile with the given linear index (x-fastest ordering).
    pub fn index(nx: usize, ny: usize, tx: usize, ty: usize, tile: usize) -> Tile2 {
        let (tx, ty) = (tx.max(1), ty.max(1));
        let tiles_x = nx.div_ceil(tx);
        let ix = tile % tiles_x;
        let iy = tile / tiles_x;
        Tile2 {
            x0: ix * tx,
            x1: ((ix + 1) * tx).min(nx),
            y0: iy * ty,
            y1: ((iy + 1) * ty).min(ny),
        }
    }

    /// Total tiles produced by [`Tile2::index`] for this domain/tile shape.
    pub fn count(nx: usize, ny: usize, tx: usize, ty: usize) -> usize {
        nx.div_ceil(tx.max(1)) * ny.div_ceil(ty.max(1))
    }
}

/// A rectangular 3D tile `[x0, x1) × [y0, y1) × [z0, z1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile3 {
    pub x0: usize,
    pub x1: usize,
    pub y0: usize,
    pub y1: usize,
    pub z0: usize,
    pub z1: usize,
}

impl Tile3 {
    /// Points in the tile.
    pub fn len(&self) -> usize {
        (self.x1 - self.x0) * (self.y1 - self.y0) * (self.z1 - self.z0)
    }

    /// True if the tile covers no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tile an `nx × ny × nz` domain into tiles of shape `(tx, ty, tz)`,
    /// returning the tile with the given linear index (x-fastest).
    #[allow(clippy::too_many_arguments)]
    pub fn index(
        nx: usize,
        ny: usize,
        nz: usize,
        tx: usize,
        ty: usize,
        tz: usize,
        tile: usize,
    ) -> Tile3 {
        let (tx, ty, tz) = (tx.max(1), ty.max(1), tz.max(1));
        let tiles_x = nx.div_ceil(tx);
        let tiles_y = ny.div_ceil(ty);
        let ix = tile % tiles_x;
        let iy = (tile / tiles_x) % tiles_y;
        let iz = tile / (tiles_x * tiles_y);
        Tile3 {
            x0: ix * tx,
            x1: ((ix + 1) * tx).min(nx),
            y0: iy * ty,
            y1: ((iy + 1) * ty).min(ny),
            z0: iz * tz,
            z1: ((iz + 1) * tz).min(nz),
        }
    }

    /// Total tiles produced by [`Tile3::index`] for this domain/tile shape.
    pub fn count(nx: usize, ny: usize, nz: usize, tx: usize, ty: usize, tz: usize) -> usize {
        nx.div_ceil(tx.max(1)) * ny.div_ceil(ty.max(1)) * nz.div_ceil(tz.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_range_exactly() {
        let spans: Vec<_> = Chunks::new(100, 7).collect();
        assert_eq!(spans.len(), Chunks::count_chunks(100, 7));
        assert_eq!(spans[0], (0, 7));
        assert_eq!(*spans.last().unwrap(), (98, 100));
        let covered: usize = spans.iter().map(|(s, e)| e - s).sum();
        assert_eq!(covered, 100);
    }

    #[test]
    fn chunks_handle_empty_and_oversized_grain() {
        assert_eq!(Chunks::new(0, 8).count(), 0);
        let spans: Vec<_> = Chunks::new(5, 100).collect();
        assert_eq!(spans, vec![(0, 5)]);
    }

    #[test]
    fn split_evenly_is_a_partition() {
        for total in [0usize, 1, 7, 64, 1000] {
            for parts in [1usize, 2, 3, 7, 16] {
                let mut covered = 0;
                let mut prev_end = 0;
                for p in 0..parts {
                    let (s, e) = split_evenly(total, parts, p);
                    assert_eq!(s, prev_end, "spans must be contiguous");
                    assert!(e >= s);
                    covered += e - s;
                    prev_end = e;
                }
                assert_eq!(covered, total);
            }
        }
    }

    #[test]
    fn split_evenly_sizes_differ_by_at_most_one() {
        let sizes: Vec<usize> = (0..7)
            .map(|p| {
                let (s, e) = split_evenly(100, 7, p);
                e - s
            })
            .collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn tile2_partitions_domain() {
        let (nx, ny, tx, ty) = (100, 37, 16, 8);
        let n = Tile2::count(nx, ny, tx, ty);
        let mut covered = 0;
        for t in 0..n {
            let tile = Tile2::index(nx, ny, tx, ty, t);
            assert!(tile.x1 <= nx && tile.y1 <= ny);
            covered += tile.len();
        }
        assert_eq!(covered, nx * ny);
    }

    #[test]
    fn tile3_partitions_domain() {
        let (nx, ny, nz) = (33, 17, 9);
        let (tx, ty, tz) = (8, 8, 4);
        let n = Tile3::count(nx, ny, nz, tx, ty, tz);
        let mut covered = 0;
        for t in 0..n {
            let tile = Tile3::index(nx, ny, nz, tx, ty, tz, t);
            covered += tile.len();
        }
        assert_eq!(covered, nx * ny * nz);
    }

    #[test]
    fn degenerate_tile_shapes_are_clamped() {
        let tile = Tile2::index(4, 4, 0, 0, 0);
        assert_eq!(
            tile,
            Tile2 {
                x0: 0,
                x1: 1,
                y0: 0,
                y1: 1
            }
        );
        assert_eq!(Tile3::count(4, 4, 4, 0, 0, 0), 64);
    }
}
