//! # parkit — parallel substrate for the SYCL portability study
//!
//! A small, dependency-light data-parallel runtime used as the *functional*
//! execution engine underneath the simulated SYCL runtime (`sycl-sim`).
//! Kernels in this project always run for real (producing validated numeric
//! results); `parkit` provides the bulk-synchronous parallel-for and
//! reduction primitives those launches map onto.
//!
//! Design notes:
//!
//! * A fixed pool of worker threads executes *parallel regions*: a region is
//!   a set of chunks drained from a shared atomic cursor (dynamic / guided
//!   scheduling, like OpenMP `schedule(dynamic)`) or pinned to lanes in
//!   near-equal spans ([`Schedule::Static`]).
//! * Workers use spin-then-park wakeup: a bounded spin on a lock-free epoch
//!   hint before falling back to a condvar, so back-to-back regions skip
//!   the sleep/wake round-trip.
//! * The calling thread participates in the region, so `ThreadPool::new(n)`
//!   spawns `n - 1` workers and the caller is the final lane.
//! * Reductions are **deterministic**: each chunk writes a partial into its
//!   own slot and partials are combined in a fixed pairwise tree, so results
//!   do not depend on thread scheduling. This mirrors the "user-defined
//!   binary tree reductions" the paper had to use for SYCL on CPUs.
//! * Panics inside a region are caught on worker threads and re-thrown on
//!   the caller after the region completes, keeping the pool reusable.
//! * When the [`telemetry`] subsystem is enabled, every region records a
//!   `RegionSpan` on the calling thread, and the pool counts chunk steals
//!   (dynamic-cursor chunks claimed by worker lanes), parks and wakes.
//!   Disabled, each site costs a single branch.
//!
//! ```
//! use parkit::ThreadPool;
//! let pool = ThreadPool::new(4);
//! let mut data = vec![0u64; 1000];
//! pool.for_each_chunk(&mut data, 64, |start, chunk| {
//!     for (i, x) in chunk.iter_mut().enumerate() {
//!         *x = (start + i) as u64;
//!     }
//! });
//! let total: u64 = pool.reduce(1000, 64, 0u64, |a, b| a + b, |r| {
//!     r.map(|i| i as u64).sum()
//! });
//! assert_eq!(total, 1000 * 999 / 2);
//! ```

mod park;
mod pool;
mod queue;
mod range;
mod reduce;
mod slice;
pub mod sync;

pub use park::Parker;
pub use pool::{PoolConfig, Schedule, ThreadPool};
pub use queue::MpmcQueue;
pub use range::{split_evenly, Chunks, Tile2, Tile3};
pub use reduce::tree_combine;
pub use slice::DisjointSlices;

use std::sync::OnceLock;

/// Lazily-initialised process-wide pool sized to the machine.
///
/// Most callers (the SYCL runtime, the DSLs) share this pool; tests that
/// need specific worker counts construct their own [`ThreadPool`].
pub fn global_pool() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ThreadPool::new(hw)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_pool_is_usable_and_shared() {
        let a = global_pool() as *const ThreadPool;
        let b = global_pool() as *const ThreadPool;
        assert_eq!(a, b);
        let sum = global_pool().reduce(100, 7, 0usize, |a, b| a + b, |r| r.sum());
        assert_eq!(sum, 4950);
    }
}
