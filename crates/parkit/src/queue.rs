//! Bounded lock-free MPMC queue (CAS slot ring with sequence numbers).
//!
//! The classic Vyukov bounded queue: a power-of-two ring of slots, each
//! carrying a sequence number that encodes whose turn the slot is.
//! Producers claim the enqueue cursor with a CAS, consumers the dequeue
//! cursor; the sequence number is the per-slot hand-off flag between
//! them, so a producer and a consumer touching different slots never
//! contend, and a slot is never read before its write is published.
//!
//! Protocol (capacity `cap`, mask `cap - 1`):
//!
//! * slot `i` starts with `seq = i`;
//! * a producer at ticket `t` may fill slot `t & mask` when `seq == t`;
//!   after writing the value it stores `seq = t + 1` (`Release`);
//! * a consumer at ticket `h` may empty slot `h & mask` when
//!   `seq == h + 1`; after taking the value it stores `seq = h + cap`
//!   (`Release`), handing the slot to the producer one lap ahead.
//!
//! `seq < ticket` means the queue is full (producer side) or empty
//! (consumer side) — both operations fail immediately rather than
//! blocking, which is what lets callers layer their own wait policy
//! (spin, [`Parker`](crate::Parker), shedding) on top.
//!
//! All cursor CASes are `AcqRel`; slot sequence loads are `Acquire`
//! and stores `Release`, so the value write is always ordered before
//! the sequence publication that makes it claimable.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Pad cursors to their own cache lines so producers and consumers do
/// not false-share.
#[repr(align(64))]
struct CachePadded(AtomicUsize);

struct Slot<T> {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded lock-free multi-producer multi-consumer queue.
pub struct MpmcQueue<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    /// Enqueue ticket counter.
    tail: CachePadded,
    /// Dequeue ticket counter.
    head: CachePadded,
}

// The UnsafeCell is only touched by the ticket holder for that slot,
// and values cross threads, so T: Send is the whole requirement.
unsafe impl<T: Send> Send for MpmcQueue<T> {}
unsafe impl<T: Send> Sync for MpmcQueue<T> {}

impl<T> MpmcQueue<T> {
    /// A queue holding at least `capacity` items (rounded up to a
    /// power of two, minimum 2).
    pub fn new(capacity: usize) -> MpmcQueue<T> {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        MpmcQueue {
            slots,
            mask: cap - 1,
            tail: CachePadded(AtomicUsize::new(0)),
            head: CachePadded(AtomicUsize::new(0)),
        }
    }

    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Approximate occupancy (exact when quiescent).
    pub fn len(&self) -> usize {
        let tail = self.tail.0.load(Ordering::Acquire);
        let head = self.head.0.load(Ordering::Acquire);
        tail.saturating_sub(head)
    }

    /// Whether the queue looks empty right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Push `value`, or hand it back if the queue is full.
    pub fn try_push(&self, value: T) -> Result<(), T> {
        let mut tail = self.tail.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[tail & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == tail {
                // Our turn: claim the ticket, then fill the slot.
                match self.tail.0.compare_exchange_weak(
                    tail,
                    tail + 1,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // Sole owner of the slot until the seq store.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(tail + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(t) => tail = t,
                }
            } else if seq < tail {
                // The consumer one lap back has not emptied it: full.
                return Err(value);
            } else {
                // Another producer claimed this ticket; move on.
                tail = self.tail.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Pop the oldest value, or `None` if the queue is empty.
    pub fn try_pop(&self) -> Option<T> {
        let mut head = self.head.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[head & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == head + 1 {
                // Filled and published: claim the ticket, take it.
                match self.head.0.compare_exchange_weak(
                    head,
                    head + 1,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq.store(head + self.capacity(), Ordering::Release);
                        return Some(value);
                    }
                    Err(h) => head = h,
                }
            } else if seq <= head {
                // Not yet filled for this lap: empty.
                return None;
            } else {
                // Another consumer claimed this ticket; move on.
                head = self.head.0.load(Ordering::Relaxed);
            }
        }
    }
}

impl<T> Drop for MpmcQueue<T> {
    fn drop(&mut self) {
        // Drain unclaimed values so their destructors run.
        while self.try_pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let q = MpmcQueue::new(4);
        assert_eq!(q.capacity(), 4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.try_push(99), Err(99), "full queue refuses");
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.try_pop(), Some(i));
        }
        assert_eq!(q.try_pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn wraps_many_laps() {
        let q = MpmcQueue::new(2);
        for lap in 0..1000 {
            q.try_push(lap * 2).unwrap();
            q.try_push(lap * 2 + 1).unwrap();
            assert_eq!(q.try_pop(), Some(lap * 2));
            assert_eq!(q.try_pop(), Some(lap * 2 + 1));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(MpmcQueue::<u8>::new(0).capacity(), 2);
        assert_eq!(MpmcQueue::<u8>::new(3).capacity(), 4);
        assert_eq!(MpmcQueue::<u8>::new(8).capacity(), 8);
        assert_eq!(MpmcQueue::<u8>::new(9).capacity(), 16);
    }

    #[test]
    fn drop_releases_unclaimed_values() {
        let probe = Arc::new(());
        {
            let q = MpmcQueue::new(8);
            for _ in 0..5 {
                q.try_push(Arc::clone(&probe)).unwrap();
            }
            assert_eq!(Arc::strong_count(&probe), 6);
        }
        assert_eq!(Arc::strong_count(&probe), 1);
    }
}
