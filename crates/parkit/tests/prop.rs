//! Property-based tests for the parallel substrate.

use parkit::{split_evenly, Chunks, ThreadPool, Tile2, Tile3};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every index in the domain is visited exactly once regardless of
    /// grain and pool width.
    #[test]
    fn for_range_visits_each_index_once(
        total in 0usize..5000,
        grain in 1usize..600,
        lanes in 1usize..9,
    ) {
        let pool = ThreadPool::new(lanes);
        let marks: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
        pool.for_range(total, grain, |s, e| {
            for m in &marks[s..e] {
                m.fetch_add(1, Ordering::Relaxed);
            }
        });
        prop_assert!(marks.iter().all(|m| m.load(Ordering::Relaxed) == 1));
    }

    /// Deterministic reduction equals the sequential fold for integers
    /// and is bit-stable for floats across lane counts.
    #[test]
    fn reduce_matches_sequential(
        xs in proptest::collection::vec(-1000i64..1000, 0..2000),
        grain in 1usize..300,
    ) {
        let pool = ThreadPool::new(4);
        let got = pool.reduce(xs.len(), grain, 0i64, |a, b| a + b, |r| {
            r.map(|i| xs[i]).sum::<i64>()
        });
        prop_assert_eq!(got, xs.iter().sum::<i64>());
    }

    #[test]
    fn float_reduce_bit_stable_across_lanes(
        xs in proptest::collection::vec(-1.0f64..1.0, 1..800),
        grain in 1usize..97,
    ) {
        let mut bits = None;
        for lanes in [1usize, 2, 5] {
            let pool = ThreadPool::new(lanes);
            let s = pool.reduce(xs.len(), grain, 0.0f64, |a, b| a + b, |r| {
                r.map(|i| xs[i]).sum::<f64>()
            });
            match bits {
                None => bits = Some(s.to_bits()),
                Some(b) => prop_assert_eq!(b, s.to_bits()),
            }
        }
    }

    /// split_evenly partitions with near-equal sizes.
    #[test]
    fn split_evenly_partitions(total in 0usize..10_000, parts in 1usize..65) {
        let mut covered = 0usize;
        let mut sizes = vec![];
        let mut prev = 0;
        for p in 0..parts {
            let (s, e) = split_evenly(total, parts, p);
            prop_assert_eq!(s, prev);
            prev = e;
            covered += e - s;
            sizes.push(e - s);
        }
        prop_assert_eq!(covered, total);
        let max = sizes.iter().max().unwrap();
        let min = sizes.iter().min().unwrap();
        prop_assert!(max - min <= 1);
    }

    /// Chunk iterator covers the domain in order without gaps.
    #[test]
    fn chunks_are_a_partition(total in 0usize..5000, grain in 1usize..700) {
        let mut next = 0usize;
        for (s, e) in Chunks::new(total, grain) {
            prop_assert_eq!(s, next);
            prop_assert!(e > s && e <= total);
            next = e;
        }
        prop_assert_eq!(next, total.min(next.max(total.min(total))));
        prop_assert_eq!(next, total);
    }

    /// 2D tiling is a partition of the domain.
    #[test]
    fn tile2_partition(
        nx in 1usize..120, ny in 1usize..120,
        tx in 1usize..40, ty in 1usize..40,
    ) {
        let n = Tile2::count(nx, ny, tx, ty);
        let mut covered = 0usize;
        for t in 0..n {
            let tile = Tile2::index(nx, ny, tx, ty, t);
            prop_assert!(tile.x1 <= nx && tile.y1 <= ny);
            covered += tile.len();
        }
        prop_assert_eq!(covered, nx * ny);
    }

    /// 3D tiling is a partition of the domain.
    #[test]
    fn tile3_partition(
        nx in 1usize..40, ny in 1usize..40, nz in 1usize..40,
        tx in 1usize..16, ty in 1usize..16, tz in 1usize..16,
    ) {
        let n = Tile3::count(nx, ny, nz, tx, ty, tz);
        let mut covered = 0usize;
        for t in 0..n {
            covered += Tile3::index(nx, ny, nz, tx, ty, tz, t).len();
        }
        prop_assert_eq!(covered, nx * ny * nz);
    }
}
