//! Property-style tests of the pool and range helpers, driven by
//! deterministic parameter sweeps (no external property-test framework:
//! the workspace builds offline with the standard library alone).

use parkit::{split_evenly, Chunks, Schedule, ThreadPool, Tile2, Tile3};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Deterministic xorshift64* stream for test inputs.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn in_range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

#[test]
fn for_range_touches_every_index_exactly_once() {
    let mut rng = XorShift::new(17);
    for case in 0..24 {
        let total = rng.in_range(1, 5000);
        let grain = rng.in_range(1, 700);
        let lanes = rng.in_range(1, 9);
        let pool = ThreadPool::new(lanes);
        let marks: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
        pool.for_range(total, grain, |s, e| {
            for m in &marks[s..e] {
                m.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(
            marks.iter().all(|m| m.load(Ordering::Relaxed) == 1),
            "case {case}: total={total} grain={grain} lanes={lanes}"
        );
    }
}

#[test]
fn reduce_matches_sequential_sum() {
    let mut rng = XorShift::new(23);
    for _ in 0..16 {
        let total = rng.in_range(1, 20_000);
        let grain = rng.in_range(1, 2000);
        let lanes = rng.in_range(1, 9);
        let data: Vec<u64> = (0..total).map(|_| rng.next_u64() % 1000).collect();
        let expect: u64 = data.iter().sum();
        let pool = ThreadPool::new(lanes);
        let got = pool.reduce(
            total,
            grain,
            0u64,
            |a, b| a + b,
            |r| r.map(|i| data[i]).sum::<u64>(),
        );
        assert_eq!(got, expect, "total={total} grain={grain} lanes={lanes}");
    }
}

#[test]
fn float_reduction_is_bit_stable_across_lane_counts() {
    let mut rng = XorShift::new(41);
    for _ in 0..8 {
        let total = rng.in_range(100, 30_000);
        let grain = rng.in_range(7, 999);
        let data: Vec<f64> = (0..total)
            .map(|_| (rng.next_u64() % 100_000) as f64 * 1e-3 - 50.0)
            .collect();
        let mut bits = Vec::new();
        for lanes in [1usize, 2, 5] {
            let pool = ThreadPool::new(lanes);
            let s = pool.reduce(
                total,
                grain,
                0.0f64,
                |a, b| a + b,
                |r| r.map(|i| data[i]).sum::<f64>(),
            );
            bits.push(s.to_bits());
        }
        assert!(
            bits.windows(2).all(|w| w[0] == w[1]),
            "bit drift across lane counts: total={total} grain={grain}"
        );
    }
}

#[test]
fn static_and_dynamic_schedules_cover_identically() {
    let mut rng = XorShift::new(59);
    for _ in 0..12 {
        let n_chunks = rng.in_range(1, 300);
        let lanes = rng.in_range(1, 9);
        let pool = ThreadPool::new(lanes);
        for sched in [Schedule::Dynamic, Schedule::Static] {
            let marks: Vec<AtomicUsize> = (0..n_chunks).map(|_| AtomicUsize::new(0)).collect();
            pool.run_region_sched(n_chunks, sched, |_l, c| {
                marks[c].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                marks.iter().all(|m| m.load(Ordering::Relaxed) == 1),
                "{sched:?} n_chunks={n_chunks} lanes={lanes}"
            );
        }
    }
}

#[test]
fn split_evenly_partitions_any_domain() {
    let mut rng = XorShift::new(71);
    for _ in 0..200 {
        let total = rng.in_range(0, 10_000);
        let parts = rng.in_range(1, 40);
        let mut prev_end = 0;
        let mut covered = 0;
        let mut max_len = 0usize;
        let mut min_len = usize::MAX;
        for p in 0..parts {
            let (s, e) = split_evenly(total, parts, p);
            assert_eq!(s, prev_end, "spans must be contiguous");
            assert!(e >= s);
            covered += e - s;
            max_len = max_len.max(e - s);
            min_len = min_len.min(e - s);
            prev_end = e;
        }
        assert_eq!(covered, total);
        assert!(max_len - min_len <= 1, "near-equal spans");
    }
}

#[test]
fn chunks_partition_any_domain() {
    let mut rng = XorShift::new(83);
    for _ in 0..200 {
        let total = rng.in_range(0, 10_000);
        let grain = rng.in_range(1, 500);
        let spans: Vec<_> = Chunks::new(total, grain).collect();
        assert_eq!(spans.len(), Chunks::count_chunks(total, grain));
        let mut prev_end = 0;
        for &(s, e) in &spans {
            assert_eq!(s, prev_end);
            assert!(e > s && e - s <= grain);
            prev_end = e;
        }
        assert_eq!(prev_end, total);
        let covered: usize = spans.iter().map(|(s, e)| e - s).sum();
        assert_eq!(covered, total);
    }
}

#[test]
fn tile2_partitions_any_domain() {
    let mut rng = XorShift::new(97);
    for _ in 0..100 {
        let nx = rng.in_range(1, 200);
        let ny = rng.in_range(1, 100);
        let tx = rng.in_range(1, 64);
        let ty = rng.in_range(1, 32);
        let n = Tile2::count(nx, ny, tx, ty);
        let mut covered = 0;
        for t in 0..n {
            let tile = Tile2::index(nx, ny, tx, ty, t);
            assert!(tile.x1 <= nx && tile.y1 <= ny);
            assert!(!tile.is_empty());
            covered += tile.len();
        }
        assert_eq!(covered, nx * ny, "nx={nx} ny={ny} tx={tx} ty={ty}");
    }
}

#[test]
fn tile3_partitions_any_domain() {
    let mut rng = XorShift::new(103);
    for _ in 0..100 {
        let (nx, ny, nz) = (
            rng.in_range(1, 80),
            rng.in_range(1, 60),
            rng.in_range(1, 40),
        );
        let (tx, ty, tz) = (rng.in_range(1, 32), rng.in_range(1, 16), rng.in_range(1, 8));
        let n = Tile3::count(nx, ny, nz, tx, ty, tz);
        let mut covered = 0;
        for t in 0..n {
            let tile = Tile3::index(nx, ny, nz, tx, ty, tz, t);
            assert!(tile.x1 <= nx && tile.y1 <= ny && tile.z1 <= nz);
            covered += tile.len();
        }
        assert_eq!(covered, nx * ny * nz);
    }
}
