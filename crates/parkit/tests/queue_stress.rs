//! Seeded stress/property tests for the lock-free MPMC queue and the
//! parker, exercising the exact shapes the service admission path uses:
//! N producers × M consumers, blocking consumers built from
//! `Parker` + `try_pop`, and a shutdown drain. Deterministic parameter
//! sweeps only — the workspace builds offline with std alone.

use parkit::{MpmcQueue, Parker};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Deterministic xorshift64* stream for test inputs.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn in_range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

/// Every pushed value is popped exactly once, across seeded sweeps of
/// producer count, consumer count, capacity and volume.
#[test]
fn every_item_delivered_exactly_once() {
    let mut rng = XorShift::new(0x5eed_0006_0001);
    for case in 0..8 {
        let producers = rng.in_range(1, 5);
        let consumers = rng.in_range(1, 5);
        let capacity = 1 << rng.in_range(1, 7);
        let per_producer = rng.in_range(200, 1200);
        let total = producers * per_producer;

        let q = Arc::new(MpmcQueue::<usize>::new(capacity));
        let seen: Arc<Vec<AtomicUsize>> =
            Arc::new((0..total).map(|_| AtomicUsize::new(0)).collect());
        let popped = Arc::new(AtomicUsize::new(0));

        std::thread::scope(|s| {
            for p in 0..producers {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..per_producer {
                        let mut v = p * per_producer + i;
                        // Full queue: spin until a consumer drains a slot.
                        while let Err(back) = q.try_push(v) {
                            v = back;
                            std::thread::yield_now();
                        }
                    }
                });
            }
            for _ in 0..consumers {
                let q = Arc::clone(&q);
                let seen = Arc::clone(&seen);
                let popped = Arc::clone(&popped);
                s.spawn(move || loop {
                    match q.try_pop() {
                        Some(v) => {
                            seen[v].fetch_add(1, Ordering::Relaxed);
                            popped.fetch_add(1, Ordering::Relaxed);
                        }
                        // Consumers retire once everything is accounted
                        // for; until then an empty pop just retries.
                        None => {
                            if popped.load(Ordering::Relaxed) == total {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });

        assert!(q.is_empty(), "case {case}: queue drained");
        for (v, m) in seen.iter().enumerate() {
            assert_eq!(
                m.load(Ordering::Relaxed),
                1,
                "case {case} ({producers}x{consumers} cap={capacity}): value {v}"
            );
        }
    }
}

/// FIFO holds per producer: a consumer never sees a producer's items
/// out of the order they were pushed.
#[test]
fn per_producer_order_is_preserved() {
    let producers = 4;
    let per_producer = 2000;
    let q = Arc::new(MpmcQueue::<(usize, usize)>::new(64));
    let mut last_seen = vec![0usize; producers];
    std::thread::scope(|s| {
        for p in 0..producers {
            let q = Arc::clone(&q);
            s.spawn(move || {
                for i in 1..=per_producer {
                    let mut item = (p, i);
                    while let Err(back) = q.try_push(item) {
                        item = back;
                        std::thread::yield_now();
                    }
                }
            });
        }
        // Single consumer observes a linear history.
        let mut got = 0;
        while got < producers * per_producer {
            if let Some((p, i)) = q.try_pop() {
                assert!(i > last_seen[p], "producer {p}: {i} after {}", last_seen[p]);
                last_seen[p] = i;
                got += 1;
            } else {
                std::thread::yield_now();
            }
        }
    });
    assert_eq!(last_seen, vec![per_producer; producers]);
}

/// Parker-blocking consumers (the admission-waiter shape): producers
/// push then unpark, consumers park when empty. No lost wakeups — every
/// item is consumed and shutdown drains cleanly with all threads
/// joining.
#[test]
fn parked_consumers_never_lose_wakeups() {
    let mut rng = XorShift::new(0x5eed_0006_0002);
    for case in 0..4 {
        let producers = rng.in_range(1, 4);
        let consumers = rng.in_range(1, 4);
        let per_producer = rng.in_range(300, 1200);
        let total = producers * per_producer;

        let q = Arc::new(MpmcQueue::<usize>::new(32));
        let parkers: Arc<Vec<Parker>> = Arc::new((0..consumers).map(|_| Parker::new()).collect());
        let done = Arc::new(AtomicBool::new(false));
        let consumed = Arc::new(AtomicUsize::new(0));

        std::thread::scope(|s| {
            for p in 0..producers {
                let q = Arc::clone(&q);
                let parkers = Arc::clone(&parkers);
                s.spawn(move || {
                    for i in 0..per_producer {
                        let mut v = p * per_producer + i;
                        while let Err(back) = q.try_push(v) {
                            v = back;
                            std::thread::yield_now();
                        }
                        // Publish-then-unpark, exactly like a permit
                        // release handing off to a queued waiter.
                        parkers[(p + i) % parkers.len()].unpark();
                    }
                });
            }
            for c in 0..consumers {
                let q = Arc::clone(&q);
                let parkers = Arc::clone(&parkers);
                let done = Arc::clone(&done);
                let consumed = Arc::clone(&consumed);
                s.spawn(move || loop {
                    if let Some(_v) = q.try_pop() {
                        consumed.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    if done.load(Ordering::Acquire) && q.is_empty() {
                        break;
                    }
                    // Losing a wakeup here would deadlock the test; the
                    // shutdown broadcast below bounds the final park.
                    parkers[c].park();
                });
            }
            // Shutdown: raise the flag, then wake everyone so nobody
            // sleeps through it.
            while consumed.load(Ordering::Relaxed) < total {
                std::thread::yield_now();
            }
            done.store(true, Ordering::Release);
            for p in parkers.iter() {
                p.unpark();
            }
        });

        assert_eq!(consumed.load(Ordering::Relaxed), total, "case {case}");
        assert!(q.is_empty(), "case {case}: shutdown drained the queue");
    }
}
