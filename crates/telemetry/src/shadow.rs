//! Shadow-access recording: the data-collection half of `sycl-verify`.
//!
//! When shadow mode is on, every dataset registers itself here at
//! creation and every view access (`ReadView::at`, `WriteView::set`,
//! `Accum::add`, the row-sliced spans, the op2 gather/scatter paths)
//! records the touched linear index into a **per-thread bitmap** for
//! the execution unit (tile / chunk / block) currently running. When a
//! unit finishes, its bitmaps merge into the active loop's union
//! bitmaps under one lock; the merge simultaneously detects write–write
//! and read–write overlap *between* units — exactly the races that no
//! race-resolution scheme covers, because units of one launch may run
//! concurrently. Atomic accumulations go to their own bitmap so that
//! atomic/atomic overlap is accepted while atomic/plain overlap is not.
//!
//! This module records and unions; it renders no verdicts. The
//! `sycl-verify` crate installs a [`Sink`] and turns each finished
//! [`LoopTrace`] into diagnostics. Like the span/counter layer, the
//! disabled path is one branch per access (a `sid != 0` register
//! compare in the views — datasets created while shadow is off carry
//! shadow id 0), and recording only ever *observes* memory, so shadow
//! runs are bit-identical to fast-path runs.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Process-wide shadow-mode switch.
static SHADOW: AtomicBool = AtomicBool::new(false);

/// Is shadow recording on? One relaxed load; views additionally guard
/// on their captured shadow id, so fully-disabled runs never get here.
#[inline(always)]
pub fn shadow_on() -> bool {
    SHADOW.load(Ordering::Relaxed)
}

/// Turn shadow recording on or off. Datasets only acquire shadow ids at
/// creation time, so enable *before* the instrumented run allocates.
pub fn set_shadow(on: bool) {
    SHADOW.store(on, Ordering::Relaxed);
}

/// Drop all shadow state: registry, active loop, sink. Called by the
/// verifier when it detaches, so one instrumented run cannot leak
/// bitmaps or stale init-tracking into the next.
pub fn reset_shadow() {
    set_shadow(false);
    lock(&REGISTRY).clear();
    *lock(&ACTIVE) = None;
    *lock(&SINK) = None;
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------- bits

/// A growable bitmap over a dataset's linear cell indices.
#[derive(Debug, Clone, Default)]
pub struct Bits {
    words: Vec<u64>,
}

impl Bits {
    /// Sized for `cells` bits, all zero.
    pub fn with_cells(cells: usize) -> Bits {
        Bits {
            words: vec![0; cells.div_ceil(64)],
        }
    }

    #[inline]
    pub fn set(&mut self, i: usize) {
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    /// Set `len` consecutive bits starting at `i` (row spans).
    pub fn set_span(&mut self, i: usize, len: usize) {
        let (mut w, end) = (i, i + len);
        while w < end {
            let word = w >> 6;
            let lo = w & 63;
            let hi = (end - (w - lo)).min(64);
            let mask = if hi - lo == 64 {
                !0u64
            } else {
                ((1u64 << (hi - lo)) - 1) << lo
            };
            self.words[word] |= mask;
            w = (word + 1) << 6;
        }
    }

    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.words
            .get(i >> 6)
            .is_some_and(|w| w & (1u64 << (i & 63)) != 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// `self |= other`.
    pub fn union(&mut self, other: &Bits) {
        if self.words.len() < other.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// First index set in both `a` and `b`.
    pub fn first_and(a: &Bits, b: &Bits) -> Option<usize> {
        for (i, (&x, &y)) in a.words.iter().zip(&b.words).enumerate() {
            let both = x & y;
            if both != 0 {
                return Some((i << 6) + both.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterate set-bit indices.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some((i << 6) + b)
                }
            })
        })
    }

    /// Zero every word, keeping the allocation.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Grow to hold at least `cells` bits, keeping contents. Needed
    /// because per-thread unit bitmaps are cached by shadow id, and ids
    /// restart when a verifier detaches and a new one attaches — the
    /// same id may name a larger dataset in the next run.
    pub fn ensure_cells(&mut self, cells: usize) {
        let need = cells.div_ceil(64);
        if self.words.len() < need {
            self.words.resize(need, 0);
        }
    }
}

// ------------------------------------------------------------ registry

/// Where a dataset's linear indices live.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DatGeom {
    /// Halo-padded structured field, x-fastest: index =
    /// `((z+off2)*pad1 + (y+off1))*pad0 + (x+off0)`.
    Grid { pad: [usize; 3], off: [i64; 3] },
    /// Unstructured set field: index = `element*dim + component`.
    Set { size: usize, dim: usize },
}

impl DatGeom {
    /// Total addressable slots.
    pub fn cells(&self) -> usize {
        match self {
            DatGeom::Grid { pad, .. } => pad[0] * pad[1] * pad[2],
            DatGeom::Set { size, dim } => size * dim,
        }
    }

    /// Logical coordinates of a linear index, for diagnostics.
    pub fn locate(&self, idx: usize) -> String {
        match self {
            DatGeom::Grid { pad, off } => {
                let x = (idx % pad[0]) as i64 - off[0];
                let y = ((idx / pad[0]) % pad[1]) as i64 - off[1];
                let z = (idx / (pad[0] * pad[1])) as i64 - off[2];
                format!("({x}, {y}, {z})")
            }
            DatGeom::Set { dim, .. } => {
                format!("element {} component {}", idx / dim, idx % dim)
            }
        }
    }

    /// Logical grid coordinates (structured only).
    pub fn grid_coords(&self, idx: usize) -> Option<[i64; 3]> {
        match self {
            DatGeom::Grid { pad, off } => Some([
                (idx % pad[0]) as i64 - off[0],
                ((idx / pad[0]) % pad[1]) as i64 - off[1],
                (idx / (pad[0] * pad[1])) as i64 - off[2],
            ]),
            DatGeom::Set { .. } => None,
        }
    }
}

struct DatRecord {
    name: String,
    elem_bytes: f64,
    geom: DatGeom,
    /// Cells written so far (by fills, ambient setup writes, or any
    /// finished loop) — the "initialized" set for uninit-read checks.
    init: Bits,
    init_all: bool,
}

static REGISTRY: Mutex<Vec<DatRecord>> = Mutex::new(Vec::new());

/// Register a dataset and get its shadow id (ids start at 1; 0 means
/// "created while shadow was off" and is never recorded).
pub fn register_dat(name: &str, elem_bytes: f64, geom: DatGeom) -> u32 {
    if !shadow_on() {
        return 0;
    }
    let mut reg = lock(&REGISTRY);
    reg.push(DatRecord {
        name: name.to_owned(),
        elem_bytes,
        geom,
        init: Bits::with_cells(geom.cells()),
        init_all: false,
    });
    reg.len() as u32
}

/// The registered name of dat `id`, for diagnostics (`None` for the
/// anonymous id 0 or after a registry reset).
pub fn dat_name(id: u32) -> Option<String> {
    if id == 0 {
        return None;
    }
    lock(&REGISTRY).get(id as usize - 1).map(|r| r.name.clone())
}

/// Mark every cell of `id` initialized (`fill_with`, host slices).
pub fn mark_all_init(id: u32) {
    if id == 0 || !shadow_on() {
        return;
    }
    if let Some(r) = lock(&REGISTRY).get_mut(id as usize - 1) {
        r.init_all = true;
    }
}

// ------------------------------------------------------- declarations

/// How a loop argument was declared.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Access {
    Read,
    Write,
    ReadWrite,
}

/// One declared loop argument, linked to a dataset by shadow id
/// (`dat == 0` when the declaration used an anonymous meta).
#[derive(Debug, Clone)]
pub struct ArgDecl {
    pub dat: u32,
    pub access: Access,
    pub radius: [usize; 3],
}

/// The declaration side of one parallel loop, captured at launch.
#[derive(Debug, Clone)]
pub struct LoopDecl {
    pub kernel: String,
    /// Structured (OPS) loops carry a real iteration box and dat-linked
    /// args; unstructured (OP2) loops only carry races/notes/footprint.
    pub structured: bool,
    pub lo: [i64; 3],
    pub hi: [i64; 3],
    pub args: Vec<ArgDecl>,
    pub flops_pp: f64,
    pub transc_pp: f64,
    /// Race-resolution scheme label for op2 loops (`None` = structured
    /// or direct loop).
    pub scheme: Option<&'static str>,
}

/// Classes of free-form observations instrumented code can attach to
/// the active loop (plan violations from the colouring validators,
/// declaration defects from the builders).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoteKind {
    PlanViolation,
    DeclDefect,
}

#[derive(Debug, Clone)]
pub struct Note {
    pub kind: NoteKind,
    pub text: String,
}

// ------------------------------------------------------- active loop

/// Overlap between execution units of one launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConflictKind {
    /// Two units plain-wrote the same cell.
    WriteWrite,
    /// One unit read a cell another plain-wrote.
    ReadWrite,
    /// Atomic and non-atomic access to the same cell.
    AtomicPlain,
}

#[derive(Debug, Clone)]
pub struct Conflict {
    pub dat: u32,
    pub cell: usize,
    pub kind: ConflictKind,
}

/// Per-dat union bitmaps for the active loop. `phase_*` reset at every
/// [`next_phase`] (one phase per launch: colour groups of one op2 loop
/// are separate launches, so cross-colour overlap is legal).
struct LoopTouch {
    read: Bits,
    write: Bits,
    atomic: Bits,
    phase_read: Bits,
    phase_write: Bits,
    phase_atomic: Bits,
}

impl LoopTouch {
    fn new(cells: usize) -> LoopTouch {
        LoopTouch {
            read: Bits::with_cells(cells),
            write: Bits::with_cells(cells),
            atomic: Bits::with_cells(cells),
            phase_read: Bits::with_cells(cells),
            phase_write: Bits::with_cells(cells),
            phase_atomic: Bits::with_cells(cells),
        }
    }
}

/// Most conflicts kept per loop (the first few name the bug; thousands
/// of repeats add nothing).
const MAX_CONFLICTS: usize = 16;

struct ActiveLoop {
    decl: LoopDecl,
    dats: Vec<(u32, LoopTouch)>,
    conflicts: Vec<Conflict>,
    notes: Vec<Note>,
    phases: u32,
}

static ACTIVE: Mutex<Option<ActiveLoop>> = Mutex::new(None);

/// Begin recording a loop. Call only when shadow is on and the session
/// executes bodies; a loop already active is replaced (and dropped).
pub fn begin_loop(decl: LoopDecl) {
    *lock(&ACTIVE) = Some(ActiveLoop {
        decl,
        dats: Vec::new(),
        conflicts: Vec::new(),
        notes: Vec::new(),
        phases: 1,
    });
}

/// Start the next launch phase of the active loop (op2 colour groups):
/// conflict unions reset, total unions persist.
pub fn next_phase() {
    if let Some(al) = lock(&ACTIVE).as_mut() {
        al.phases += 1;
        for (_, t) in &mut al.dats {
            t.phase_read.clear();
            t.phase_write.clear();
            t.phase_atomic.clear();
        }
    }
}

/// Attach a note to the active loop (dropped when no loop is active).
pub fn note(kind: NoteKind, text: String) {
    if let Some(al) = lock(&ACTIVE).as_mut() {
        al.notes.push(Note { kind, text });
    }
}

// ------------------------------------------------------------- traces

/// What one dat experienced over one loop.
#[derive(Debug, Clone)]
pub struct DatTrace {
    pub id: u32,
    pub name: String,
    pub elem_bytes: f64,
    pub geom: DatGeom,
    pub read: Bits,
    pub write: Bits,
    pub atomic: Bits,
    /// Reads of cells never initialized by a fill, setup write, or any
    /// earlier loop (and not written by this one).
    pub uninit_reads: usize,
    pub uninit_example: Option<usize>,
}

/// The full observation of one loop, handed to the sink.
#[derive(Debug, Clone)]
pub struct LoopTrace {
    pub decl: LoopDecl,
    pub dats: Vec<DatTrace>,
    pub conflicts: Vec<Conflict>,
    pub notes: Vec<Note>,
    pub phases: u32,
}

/// Consumer of finished loop traces (installed by `sycl-verify`).
pub type Sink = Box<dyn Fn(LoopTrace) + Send + Sync>;

static SINK: Mutex<Option<Sink>> = Mutex::new(None);

/// Install the trace consumer (replacing any previous one).
pub fn install_sink(sink: Sink) {
    *lock(&SINK) = Some(sink);
}

/// Finish the active loop: compute uninit reads, fold writes into the
/// registry's init set, and hand the trace to the sink.
pub fn end_loop() {
    let Some(al) = lock(&ACTIVE).take() else {
        return;
    };
    let mut dats = Vec::with_capacity(al.dats.len());
    {
        let mut reg = lock(&REGISTRY);
        for (id, t) in al.dats {
            let Some(rec) = reg.get_mut(id as usize - 1) else {
                continue;
            };
            let mut uninit_reads = 0;
            let mut uninit_example = None;
            if !rec.init_all {
                for i in t.read.ones() {
                    if !rec.init.get(i) && !t.write.get(i) && !t.atomic.get(i) {
                        uninit_reads += 1;
                        uninit_example.get_or_insert(i);
                    }
                }
            }
            rec.init.union(&t.write);
            rec.init.union(&t.atomic);
            dats.push(DatTrace {
                id,
                name: rec.name.clone(),
                elem_bytes: rec.elem_bytes,
                geom: rec.geom,
                read: t.read,
                write: t.write,
                atomic: t.atomic,
                uninit_reads,
                uninit_example,
            });
        }
    }
    let trace = LoopTrace {
        decl: al.decl,
        dats,
        conflicts: al.conflicts,
        notes: al.notes,
        phases: al.phases,
    };
    if let Some(sink) = lock(&SINK).as_ref() {
        sink(trace);
    }
}

// ----------------------------------------------------- unit recording

struct UnitTouch {
    id: u32,
    touched: bool,
    read: Bits,
    write: Bits,
    atomic: Bits,
}

#[derive(Default)]
struct UnitState {
    depth: u32,
    dats: Vec<UnitTouch>,
}

thread_local! {
    static UNIT: RefCell<UnitState> = RefCell::new(UnitState::default());
}

/// Enter one execution unit (tile / chunk / block) on this thread.
pub fn begin_unit() {
    if !shadow_on() {
        return;
    }
    UNIT.with(|u| u.borrow_mut().depth += 1);
}

/// Leave the unit: merge its bitmaps into the active loop and detect
/// overlap against the units already merged in this phase.
pub fn end_unit() {
    UNIT.with(|cell| {
        let mut u = cell.borrow_mut();
        if u.depth == 0 {
            return;
        }
        u.depth -= 1;
        if u.depth > 0 {
            return;
        }
        let mut active = lock(&ACTIVE);
        if let Some(al) = active.as_mut() {
            for t in u.dats.iter().filter(|t| t.touched) {
                let lt = match al.dats.iter_mut().find(|(id, _)| *id == t.id) {
                    Some((_, lt)) => lt,
                    None => {
                        let cells = lock(&REGISTRY)
                            .get(t.id as usize - 1)
                            .map(|r| r.geom.cells())
                            .unwrap_or(0);
                        al.dats.push((t.id, LoopTouch::new(cells)));
                        &mut al.dats.last_mut().unwrap().1
                    }
                };
                if al.conflicts.len() < MAX_CONFLICTS {
                    let found = Bits::first_and(&t.write, &lt.phase_write)
                        .map(|c| (c, ConflictKind::WriteWrite))
                        .or_else(|| {
                            Bits::first_and(&t.write, &lt.phase_read)
                                .or_else(|| Bits::first_and(&t.read, &lt.phase_write))
                                .map(|c| (c, ConflictKind::ReadWrite))
                        })
                        .or_else(|| {
                            Bits::first_and(&t.atomic, &lt.phase_write)
                                .or_else(|| Bits::first_and(&t.atomic, &lt.phase_read))
                                .or_else(|| Bits::first_and(&t.write, &lt.phase_atomic))
                                .or_else(|| Bits::first_and(&t.read, &lt.phase_atomic))
                                .map(|c| (c, ConflictKind::AtomicPlain))
                        });
                    if let Some((cell_idx, kind)) = found {
                        al.conflicts.push(Conflict {
                            dat: t.id,
                            cell: cell_idx,
                            kind,
                        });
                    }
                }
                lt.read.union(&t.read);
                lt.write.union(&t.write);
                lt.atomic.union(&t.atomic);
                lt.phase_read.union(&t.read);
                lt.phase_write.union(&t.write);
                lt.phase_atomic.union(&t.atomic);
            }
        }
        drop(active);
        for t in &mut u.dats {
            t.read.clear();
            t.write.clear();
            t.atomic.clear();
            t.touched = false;
        }
    });
}

#[derive(Clone, Copy)]
enum Kind {
    Read,
    Write,
    Atomic,
}

fn record(id: u32, idx: usize, len: usize, cells: usize, kind: Kind) {
    UNIT.with(|cell| {
        let mut u = cell.borrow_mut();
        if u.depth == 0 {
            // Ambient access (setup/validation outside any loop):
            // writes initialize, reads are unchecked.
            if matches!(kind, Kind::Write) {
                if let Some(r) = lock(&REGISTRY).get_mut(id as usize - 1) {
                    r.init.set_span(idx, len);
                }
            }
            return;
        }
        let t = match u.dats.iter_mut().position(|t| t.id == id) {
            Some(p) => {
                let t = &mut u.dats[p];
                t.read.ensure_cells(cells);
                t.write.ensure_cells(cells);
                t.atomic.ensure_cells(cells);
                t
            }
            None => {
                u.dats.push(UnitTouch {
                    id,
                    touched: false,
                    read: Bits::with_cells(cells),
                    write: Bits::with_cells(cells),
                    atomic: Bits::with_cells(cells),
                });
                u.dats.last_mut().unwrap()
            }
        };
        t.touched = true;
        let bits = match kind {
            Kind::Read => &mut t.read,
            Kind::Write => &mut t.write,
            Kind::Atomic => &mut t.atomic,
        };
        if len == 1 {
            bits.set(idx);
        } else {
            bits.set_span(idx, len);
        }
    });
}

/// Record a single-cell read. `cells` sizes the bitmap on first touch.
#[inline]
pub fn record_read(id: u32, idx: usize, cells: usize) {
    if id != 0 && shadow_on() {
        record(id, idx, 1, cells, Kind::Read);
    }
}

/// Record a contiguous read span (row slices).
#[inline]
pub fn record_read_span(id: u32, idx: usize, len: usize, cells: usize) {
    if id != 0 && shadow_on() && len > 0 {
        record(id, idx, len, cells, Kind::Read);
    }
}

/// Record a single-cell plain write.
#[inline]
pub fn record_write(id: u32, idx: usize, cells: usize) {
    if id != 0 && shadow_on() {
        record(id, idx, 1, cells, Kind::Write);
    }
}

/// Record a contiguous write span (mutable row slices — conservatively
/// also a read span, since the body may read through the slice).
#[inline]
pub fn record_write_span(id: u32, idx: usize, len: usize, cells: usize) {
    if id != 0 && shadow_on() && len > 0 {
        record(id, idx, len, cells, Kind::Read);
        record(id, idx, len, cells, Kind::Write);
    }
}

/// Record an atomic read-modify-write.
#[inline]
pub fn record_atomic(id: u32, idx: usize, cells: usize) {
    if id != 0 && shadow_on() {
        record(id, idx, 1, cells, Kind::Atomic);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Shadow state is process-global; this module's tests share one
    // lock so they cannot interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn grid4() -> DatGeom {
        DatGeom::Grid {
            pad: [4, 4, 1],
            off: [0, 0, 0],
        }
    }

    fn decl(kernel: &str) -> LoopDecl {
        LoopDecl {
            kernel: kernel.to_owned(),
            structured: true,
            lo: [0, 0, 0],
            hi: [4, 4, 1],
            args: Vec::new(),
            flops_pp: 0.0,
            transc_pp: 0.0,
            scheme: None,
        }
    }

    fn capture(run: impl FnOnce()) -> Vec<LoopTrace> {
        let traces = std::sync::Arc::new(Mutex::new(Vec::new()));
        let sink_traces = std::sync::Arc::clone(&traces);
        install_sink(Box::new(move |t| sink_traces.lock().unwrap().push(t)));
        run();
        let out = traces.lock().unwrap().clone();
        reset_shadow();
        out
    }

    #[test]
    fn bits_spans_and_iteration() {
        let mut b = Bits::with_cells(200);
        b.set_span(60, 70);
        assert_eq!(b.count(), 70);
        assert!(b.get(60) && b.get(129) && !b.get(59) && !b.get(130));
        assert_eq!(b.ones().next(), Some(60));
        let mut c = Bits::with_cells(200);
        c.set(100);
        assert_eq!(Bits::first_and(&b, &c), Some(100));
    }

    #[test]
    fn units_merge_and_conflicts_are_detected() {
        let _l = lock(&TEST_LOCK);
        let traces = capture(|| {
            set_shadow(true);
            let id = register_dat("u", 8.0, grid4());
            begin_loop(decl("k"));
            begin_unit();
            record_write(id, 3, 16);
            record_read(id, 2, 16);
            end_unit();
            begin_unit();
            record_write(id, 3, 16); // same cell as unit 1: WW race
            end_unit();
            end_loop();
        });
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.conflicts.len(), 1);
        assert_eq!(t.conflicts[0].kind, ConflictKind::WriteWrite);
        assert_eq!(t.conflicts[0].cell, 3);
        assert_eq!(t.dats[0].write.count(), 1);
        assert_eq!(t.dats[0].read.count(), 1);
    }

    #[test]
    fn atomic_overlap_is_not_a_conflict_and_phases_reset() {
        let _l = lock(&TEST_LOCK);
        let traces = capture(|| {
            set_shadow(true);
            let id = register_dat("acc", 8.0, DatGeom::Set { size: 8, dim: 1 });
            begin_loop(decl("flux"));
            for _ in 0..2 {
                begin_unit();
                record_atomic(id, 5, 8);
                end_unit();
            }
            // New phase: a plain write over the old cells is legal.
            next_phase();
            begin_unit();
            record_write(id, 5, 8);
            end_unit();
            end_loop();
        });
        assert!(traces[0].conflicts.is_empty(), "{:?}", traces[0].conflicts);
        assert_eq!(traces[0].phases, 2);
    }

    #[test]
    fn uninit_reads_are_counted_and_writes_initialize() {
        let _l = lock(&TEST_LOCK);
        let traces = capture(|| {
            set_shadow(true);
            let id = register_dat("u", 8.0, grid4());
            begin_loop(decl("first"));
            begin_unit();
            record_read(id, 7, 16); // never initialized
            record_write(id, 1, 16);
            end_unit();
            end_loop();
            begin_loop(decl("second"));
            begin_unit();
            record_read(id, 1, 16); // initialized by loop "first"
            end_unit();
            end_loop();
        });
        assert_eq!(traces[0].uninit(), (1, Some(7)));
        assert_eq!(traces[1].uninit(), (0, None));
    }

    impl LoopTrace {
        fn uninit(&self) -> (usize, Option<usize>) {
            (self.dats[0].uninit_reads, self.dats[0].uninit_example)
        }
    }

    #[test]
    fn ambient_writes_initialize_without_a_loop() {
        let _l = lock(&TEST_LOCK);
        let traces = capture(|| {
            set_shadow(true);
            let id = register_dat("u", 8.0, grid4());
            record_write(id, 9, 16); // setup outside any loop
            begin_loop(decl("k"));
            begin_unit();
            record_read(id, 9, 16);
            end_unit();
            end_loop();
        });
        assert_eq!(traces[0].dats[0].uninit_reads, 0);
    }

    #[test]
    fn disabled_mode_records_nothing() {
        let _l = lock(&TEST_LOCK);
        assert_eq!(register_dat("u", 8.0, grid4()), 0);
        record_read(0, 3, 16);
        assert!(lock(&ACTIVE).is_none());
    }

    #[test]
    fn geometry_locates_cells() {
        let g = DatGeom::Grid {
            pad: [6, 4, 2],
            off: [1, 1, 0],
        };
        assert_eq!(g.locate(0), "(-1, -1, 0)");
        assert_eq!(g.grid_coords(6 * 4 + 7), Some([0, 0, 1]));
        let s = DatGeom::Set { size: 10, dim: 5 };
        assert_eq!(s.locate(12), "element 2 component 2");
    }
}
