//! Crash-surviving per-process flight recorder.
//!
//! The span rings ([`crate::ring`]) are in-memory: a SIGKILL'd study
//! worker takes its trace with it, and the journal can only say *that*
//! a unit died, never *what it was doing*. The flight recorder closes
//! that gap: a compact binary append-only event log written straight
//! through a small incremental-flush buffer, so whatever survives on
//! disk after a kill is a readable prefix of the truth.
//!
//! ## Format (`SYFR`, version 1)
//!
//! Header: magic `SYFR`, `u16` version, `u32` worker slot, `u32` OS
//! pid, `u64` start timestamp (unix nanoseconds), length-prefixed
//! label. Then a flat sequence of tagged records:
//!
//! | tag | record    | payload                                              |
//! |-----|-----------|------------------------------------------------------|
//! | 1   | SpanOpen  | `t_ns u64, kind u8, name (u16 len + bytes)`          |
//! | 2   | SpanClose | `t_ns u64, kind u8, name (u16 len + bytes)`          |
//! | 3   | Counters  | `t_ns u64` + the 9 [`CounterSnapshot`] fields        |
//! | 4   | TraceMark | `t_ns u64, role u8, trace u64, unit u32, attempt u32, tag (u16 len + bytes)` |
//! | 5   | PeakRss   | `t_ns u64, kb u64`                                   |
//!
//! All integers little-endian. Timestamps are **unix-epoch**
//! nanoseconds (not the per-process [`crate::now_ns`] epoch) so
//! recordings from different processes merge onto one fleet timeline.
//!
//! ## Durability discipline
//!
//! Two classes of event. *Urgent* events — unit/phase span opens, trace
//! marks, counter snapshots, peak-RSS — are `write(2)`'d to the file
//! immediately: once the syscall returns, the bytes live in the kernel
//! page cache and survive SIGKILL (only a machine crash loses them, and
//! the study journal accepts that same risk). *Routine* events — launch
//! opens and every close — sit in a small buffer flushed at
//! [`FLUSH_THRESHOLD`] bytes and at unit boundaries, bounding syscall
//! overhead on the launch hot path. Either way the tail may be torn
//! mid-record; the reader treats a torn tail as end-of-recording, the
//! same tolerance discipline as the study journal
//! (`study::orchestrator::read_journal`).
//!
//! Like the span rings, the recorder observes and never feeds back:
//! enabling it cannot change a session ledger bit
//! (`crates/core/tests/telemetry_equiv.rs` proves this for both).

use crate::counters::{counters, CounterSnapshot};
use crate::ring::SpanKind;
use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{SystemTime, UNIX_EPOCH};

/// File magic: "SYcl Flight Recorder".
pub const MAGIC: [u8; 4] = *b"SYFR";
/// Format version written by this build.
pub const VERSION: u16 = 1;
/// Routine events are flushed once the buffer holds this many bytes.
pub const FLUSH_THRESHOLD: usize = 4096;

const TAG_SPAN_OPEN: u8 = 1;
const TAG_SPAN_CLOSE: u8 = 2;
const TAG_COUNTERS: u8 = 3;
const TAG_TRACE_MARK: u8 = 4;
const TAG_PEAK_RSS: u8 = 5;

/// Where a causal trace mark sits in a unit's dispatch→result arc.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceRole {
    /// Orchestrator handed the unit to a worker.
    Dispatch,
    /// Worker started executing the unit.
    Begin,
    /// Orchestrator received the unit's outcome.
    Result,
}

impl TraceRole {
    /// Lower-case label for exports.
    pub fn label(self) -> &'static str {
        match self {
            TraceRole::Dispatch => "dispatch",
            TraceRole::Begin => "begin",
            TraceRole::Result => "result",
        }
    }

    fn code(self) -> u8 {
        match self {
            TraceRole::Dispatch => 0,
            TraceRole::Begin => 1,
            TraceRole::Result => 2,
        }
    }

    fn from_code(c: u8) -> Option<TraceRole> {
        match c {
            0 => Some(TraceRole::Dispatch),
            1 => Some(TraceRole::Begin),
            2 => Some(TraceRole::Result),
            _ => None,
        }
    }
}

fn kind_code(k: SpanKind) -> u8 {
    match k {
        SpanKind::Launch => 0,
        SpanKind::Region => 1,
        SpanKind::Reduce => 2,
        SpanKind::Phase => 3,
        SpanKind::Replay => 4,
        SpanKind::Shard => 5,
        SpanKind::Unit => 6,
    }
}

fn kind_from_code(c: u8) -> Option<SpanKind> {
    match c {
        0 => Some(SpanKind::Launch),
        1 => Some(SpanKind::Region),
        2 => Some(SpanKind::Reduce),
        3 => Some(SpanKind::Phase),
        4 => Some(SpanKind::Replay),
        5 => Some(SpanKind::Shard),
        6 => Some(SpanKind::Unit),
        _ => None,
    }
}

/// Unix-epoch nanoseconds now. Cross-process comparable, which the
/// per-process [`crate::now_ns`] epoch is not.
pub fn unix_now_ns() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

/// One decoded flight-recorder event.
#[derive(Debug, Clone, PartialEq)]
pub enum FlightEvent {
    SpanOpen {
        t_ns: u64,
        kind: SpanKind,
        name: String,
    },
    SpanClose {
        t_ns: u64,
        kind: SpanKind,
        name: String,
    },
    Counters {
        t_ns: u64,
        snap: CounterSnapshot,
    },
    TraceMark {
        t_ns: u64,
        role: TraceRole,
        trace: u64,
        unit: u32,
        attempt: u32,
        tag: String,
    },
    PeakRss {
        t_ns: u64,
        kb: u64,
    },
}

impl FlightEvent {
    /// The event's timestamp, unix nanoseconds.
    pub fn t_ns(&self) -> u64 {
        match self {
            FlightEvent::SpanOpen { t_ns, .. }
            | FlightEvent::SpanClose { t_ns, .. }
            | FlightEvent::Counters { t_ns, .. }
            | FlightEvent::TraceMark { t_ns, .. }
            | FlightEvent::PeakRss { t_ns, .. } => *t_ns,
        }
    }
}

struct Writer {
    file: File,
    buf: Vec<u8>,
    events: u64,
}

impl Writer {
    /// Move the buffer into the kernel page cache. Short of a machine
    /// crash these bytes now survive any process death.
    fn flush(&mut self) {
        if !self.buf.is_empty() {
            // A failed write (disk full) silently drops the tail: the
            // recorder must never panic the process it is observing.
            let _ = self.file.write_all(&self.buf);
            self.buf.clear();
        }
    }
}

/// Single branch every instrumentation site pays when the recorder is
/// off (mirrors [`crate::enabled`] for the span rings).
static RECORDING: AtomicBool = AtomicBool::new(false);

static WRITER: Mutex<Option<Writer>> = Mutex::new(None);

fn lock() -> MutexGuard<'static, Option<Writer>> {
    WRITER.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Is a flight recording in progress?
#[inline(always)]
pub fn recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

fn push_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn push_name(buf: &mut Vec<u8>, name: &str) {
    // Names are interned kernel ids and unit ids — short. Cap at the
    // u16 length prefix, cut back to a char boundary if ever hit.
    let mut end = name.len().min(u16::MAX as usize);
    while end > 0 && !name.is_char_boundary(end) {
        end -= 1;
    }
    push_u16(buf, end as u16);
    buf.extend_from_slice(&name.as_bytes()[..end]);
}

/// Begin recording to `path`. The header (including `worker` slot and
/// `label`, which exporters use to name the process track) is written
/// through to disk before this returns. An already-running recording is
/// flushed and closed first.
pub fn start(path: &Path, worker: u32, label: &str) -> std::io::Result<()> {
    let mut file = File::create(path)?;
    let mut hdr = Vec::with_capacity(64);
    hdr.extend_from_slice(&MAGIC);
    push_u16(&mut hdr, VERSION);
    push_u32(&mut hdr, worker);
    push_u32(&mut hdr, std::process::id());
    push_u64(&mut hdr, unix_now_ns());
    push_name(&mut hdr, label);
    file.write_all(&hdr)?;
    let mut g = lock();
    if let Some(old) = g.as_mut() {
        old.flush();
    }
    *g = Some(Writer {
        file,
        buf: Vec::with_capacity(FLUSH_THRESHOLD * 2),
        events: 0,
    });
    drop(g);
    RECORDING.store(true, Ordering::Relaxed);
    Ok(())
}

/// Stop recording: flush the tail and close the file. Returns the
/// number of events the recording captured, or `None` if no recording
/// was running.
pub fn stop() -> Option<u64> {
    RECORDING.store(false, Ordering::Relaxed);
    let mut g = lock();
    g.take().map(|mut w| {
        w.flush();
        w.events
    })
}

/// Append one encoded record, flushing according to urgency.
fn append(encode: impl FnOnce(&mut Vec<u8>), urgent: bool) {
    let mut g = lock();
    if let Some(w) = g.as_mut() {
        encode(&mut w.buf);
        w.events += 1;
        if urgent || w.buf.len() >= FLUSH_THRESHOLD {
            w.flush();
        }
    }
}

fn span_record(tag: u8, kind: SpanKind, name: &str, urgent: bool) {
    if !recording() {
        return;
    }
    let t = unix_now_ns();
    append(
        |buf| {
            buf.push(tag);
            push_u64(buf, t);
            buf.push(kind_code(kind));
            push_name(buf, name);
        },
        urgent,
    );
}

/// Record a span opening. Unit and phase opens are urgent (they are the
/// crash-attribution anchors); launch opens ride the buffer.
pub fn span_open(kind: SpanKind, name: &str) {
    let urgent = matches!(kind, SpanKind::Unit | SpanKind::Phase);
    span_record(TAG_SPAN_OPEN, kind, name, urgent);
}

/// Record a span closing. Closes are never urgent: a lost close reads
/// as "still inside", which is the conservative answer post-mortem.
pub fn span_close(kind: SpanKind, name: &str) {
    span_record(TAG_SPAN_CLOSE, kind, name, false);
}

/// Record a causal trace mark (always urgent — marks are the evidence
/// the cross-process flow arrows and crash attribution hang off).
pub fn trace_mark(role: TraceRole, trace: u64, unit: u32, attempt: u32, tag: &str) {
    if !recording() {
        return;
    }
    let t = unix_now_ns();
    append(
        |buf| {
            buf.push(TAG_TRACE_MARK);
            push_u64(buf, t);
            buf.push(role.code());
            push_u64(buf, trace);
            push_u32(buf, unit);
            push_u32(buf, attempt);
            push_name(buf, tag);
        },
        true,
    );
}

/// Snapshot the process counters into the recording (urgent; callers
/// invoke this at coarse period, e.g. once per unit).
pub fn counters_mark() {
    if !recording() {
        return;
    }
    let t = unix_now_ns();
    let c = counters().snapshot();
    append(
        |buf| {
            buf.push(TAG_COUNTERS);
            push_u64(buf, t);
            for v in [
                c.launches,
                c.pricing_cache_hits,
                c.pricing_cache_misses,
                c.regions,
                c.steals,
                c.parks,
                c.wakes,
                c.bytes_moved,
                c.spans_dropped,
            ] {
                push_u64(buf, v);
            }
        },
        true,
    );
}

/// Record the process's peak RSS in kilobytes (urgent; written once at
/// worker exit).
pub fn peak_rss(kb: u64) {
    if !recording() {
        return;
    }
    let t = unix_now_ns();
    append(
        |buf| {
            buf.push(TAG_PEAK_RSS);
            push_u64(buf, t);
            push_u64(buf, kb);
        },
        true,
    );
}

/// Flush buffered routine events through to the page cache (unit
/// boundaries call this so a later crash can't orphan a whole unit's
/// launch history).
pub fn flush() {
    if !recording() {
        return;
    }
    if let Some(w) = lock().as_mut() {
        w.flush();
    }
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// Cursor over the raw bytes; `None` from any `take_*` means the record
/// is torn mid-field.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.bytes.len() - self.pos < n {
            return None;
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }
    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|s| u16::from_le_bytes([s[0], s[1]]))
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }
    fn name(&mut self) -> Option<String> {
        let len = self.u16()? as usize;
        let raw = self.take(len)?;
        Some(String::from_utf8_lossy(raw).into_owned())
    }
}

/// A decoded recording: header identity plus every event that made it
/// to disk intact. `torn` is set when the byte stream ended mid-record
/// (the process died with the tail in flight) or hit an unknown tag —
/// everything before the tear is still served.
#[derive(Debug, Clone)]
pub struct FlightRecording {
    pub worker: u32,
    pub pid: u32,
    pub start_unix_ns: u64,
    pub label: String,
    pub events: Vec<FlightEvent>,
    pub torn: bool,
}

impl FlightRecording {
    /// Decode a recording from raw bytes. A short or alien *header* is
    /// a hard error (the file is not a flight recording); a torn *tail*
    /// is not (the recording is served up to the tear, `torn = true`).
    pub fn parse(bytes: &[u8]) -> Result<FlightRecording, String> {
        let mut c = Cursor { bytes, pos: 0 };
        let magic = c.take(4).ok_or("flight recording shorter than magic")?;
        if magic != MAGIC {
            return Err(format!("bad flight magic {magic:02x?}"));
        }
        let version = c.u16().ok_or("flight header truncated at version")?;
        if version != VERSION {
            return Err(format!(
                "flight version {version} (this build reads {VERSION})"
            ));
        }
        let worker = c.u32().ok_or("flight header truncated at worker")?;
        let pid = c.u32().ok_or("flight header truncated at pid")?;
        let start_unix_ns = c.u64().ok_or("flight header truncated at start")?;
        let label = c.name().ok_or("flight header truncated at label")?;
        let mut events = Vec::new();
        let mut torn = false;
        while c.pos < bytes.len() {
            match Self::parse_record(&mut c) {
                Some(Some(ev)) => events.push(ev),
                // `Some(None)`: unknown tag — a newer writer or
                // corruption; nothing after this point can be framed.
                // `None`: torn mid-record — the death left a partial
                // tail. Both end the recording at the last good event.
                Some(None) | None => {
                    torn = true;
                    break;
                }
            }
        }
        Ok(FlightRecording {
            worker,
            pid,
            start_unix_ns,
            label,
            events,
            torn,
        })
    }

    /// `Some(Some(ev))` = one record; `Some(None)` = unknown tag;
    /// `None` = torn mid-record.
    fn parse_record(c: &mut Cursor<'_>) -> Option<Option<FlightEvent>> {
        let tag = c.u8()?;
        let t_ns = c.u64()?;
        let ev = match tag {
            TAG_SPAN_OPEN | TAG_SPAN_CLOSE => {
                let kind = kind_from_code(c.u8()?);
                let name = c.name()?;
                match kind {
                    Some(kind) if tag == TAG_SPAN_OPEN => {
                        FlightEvent::SpanOpen { t_ns, kind, name }
                    }
                    Some(kind) => FlightEvent::SpanClose { t_ns, kind, name },
                    None => return Some(None),
                }
            }
            TAG_COUNTERS => {
                let mut f = [0u64; 9];
                for v in f.iter_mut() {
                    *v = c.u64()?;
                }
                FlightEvent::Counters {
                    t_ns,
                    snap: CounterSnapshot {
                        launches: f[0],
                        pricing_cache_hits: f[1],
                        pricing_cache_misses: f[2],
                        regions: f[3],
                        steals: f[4],
                        parks: f[5],
                        wakes: f[6],
                        bytes_moved: f[7],
                        spans_dropped: f[8],
                    },
                }
            }
            TAG_TRACE_MARK => {
                let role = TraceRole::from_code(c.u8()?);
                let trace = c.u64()?;
                let unit = c.u32()?;
                let attempt = c.u32()?;
                let tag_s = c.name()?;
                match role {
                    Some(role) => FlightEvent::TraceMark {
                        t_ns,
                        role,
                        trace,
                        unit,
                        attempt,
                        tag: tag_s,
                    },
                    None => return Some(None),
                }
            }
            TAG_PEAK_RSS => FlightEvent::PeakRss { t_ns, kb: c.u64()? },
            _ => return Some(None),
        };
        Some(Some(ev))
    }

    /// Read and decode a recording file.
    pub fn read(path: &Path) -> Result<FlightRecording, String> {
        let bytes = std::fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::parse(&bytes)
    }

    /// The spans still open when the recording ended, outermost first —
    /// replayed from the open/close stream. Closes pop the most recent
    /// matching open, so interleaved (non-LIFO) spans from concurrent
    /// threads still resolve.
    pub fn open_spans(&self) -> Vec<(SpanKind, &str, u64)> {
        let mut stack: Vec<(SpanKind, &str, u64)> = Vec::new();
        for ev in &self.events {
            match ev {
                FlightEvent::SpanOpen { t_ns, kind, name } => {
                    stack.push((*kind, name.as_str(), *t_ns));
                }
                FlightEvent::SpanClose { kind, name, .. } => {
                    if let Some(i) = stack
                        .iter()
                        .rposition(|(k, n, _)| k == kind && *n == name.as_str())
                    {
                        stack.remove(i);
                    }
                }
                _ => {}
            }
        }
        stack
    }

    /// The deepest span still open at the end of the recording — the
    /// crash attribution: what the process was inside when it died.
    pub fn last_open_span(&self) -> Option<(SpanKind, &str, u64)> {
        self.open_spans().pop()
    }

    /// Timestamp of the last decoded event (unix ns); header start time
    /// if the recording is empty.
    pub fn last_event_ns(&self) -> u64 {
        self.events
            .iter()
            .map(FlightEvent::t_ns)
            .max()
            .unwrap_or(self.start_unix_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recorder is process-global; tests that start/stop it must
    /// not interleave.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("flight-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trip_every_record_kind() {
        let _g = serial();
        let path = tmp("roundtrip.bin");
        start(&path, 3, "worker-3").unwrap();
        span_open(SpanKind::Unit, "clover/a100/usm@dpcpp");
        trace_mark(TraceRole::Begin, 42, 7, 1, "clover/a100/usm@dpcpp");
        span_open(SpanKind::Launch, "advec_cell");
        span_close(SpanKind::Launch, "advec_cell");
        counters_mark();
        peak_rss(12345);
        span_close(SpanKind::Unit, "clover/a100/usm@dpcpp");
        assert_eq!(stop(), Some(7));
        let rec = FlightRecording::read(&path).unwrap();
        assert_eq!(rec.worker, 3);
        assert_eq!(rec.pid, std::process::id());
        assert_eq!(rec.label, "worker-3");
        assert!(!rec.torn);
        assert_eq!(rec.events.len(), 7);
        assert!(rec.open_spans().is_empty());
        assert!(matches!(
            rec.events[1],
            FlightEvent::TraceMark {
                role: TraceRole::Begin,
                trace: 42,
                unit: 7,
                attempt: 1,
                ..
            }
        ));
        assert!(matches!(
            rec.events[5],
            FlightEvent::PeakRss { kb: 12345, .. }
        ));
    }

    #[test]
    fn unclosed_spans_attribute_the_crash() {
        let _g = serial();
        let path = tmp("attrib.bin");
        start(&path, 0, "w").unwrap();
        span_open(SpanKind::Unit, "unit-id");
        span_open(SpanKind::Phase, "advection");
        span_open(SpanKind::Launch, "advec_mom");
        span_close(SpanKind::Launch, "advec_mom");
        span_open(SpanKind::Launch, "advec_cell");
        stop();
        let rec = FlightRecording::read(&path).unwrap();
        let open = rec.open_spans();
        assert_eq!(open.len(), 3);
        let (kind, name, _) = rec.last_open_span().unwrap();
        assert_eq!(kind, SpanKind::Launch);
        assert_eq!(name, "advec_cell");
        assert_eq!(open[0].1, "unit-id");
    }

    #[test]
    fn interleaved_closes_pop_the_matching_open() {
        let _g = serial();
        let path = tmp("interleave.bin");
        start(&path, 0, "w").unwrap();
        span_open(SpanKind::Launch, "a");
        span_open(SpanKind::Launch, "b");
        span_close(SpanKind::Launch, "a"); // non-LIFO
        stop();
        let rec = FlightRecording::read(&path).unwrap();
        let open = rec.open_spans();
        assert_eq!(open.len(), 1);
        assert_eq!(open[0].1, "b");
    }

    #[test]
    fn recording_off_is_a_no_op() {
        let _g = serial();
        assert!(!recording());
        span_open(SpanKind::Launch, "nope");
        trace_mark(TraceRole::Dispatch, 1, 0, 0, "nope");
        flush();
        assert_eq!(stop(), None);
    }

    #[test]
    fn long_names_are_capped_at_the_length_prefix() {
        let _g = serial();
        let path = tmp("longname.bin");
        let long = "k".repeat(100_000);
        start(&path, 0, "w").unwrap();
        span_open(SpanKind::Unit, &long);
        stop();
        let rec = FlightRecording::read(&path).unwrap();
        match &rec.events[0] {
            FlightEvent::SpanOpen { name, .. } => assert_eq!(name.len(), u16::MAX as usize),
            other => panic!("unexpected {other:?}"),
        }
    }
}
