//! The workspace's one hand-rolled JSON emitter (and a syntax checker).
//!
//! The bench binaries and the trace exporters all write JSON by hand
//! (the workspace builds offline with std alone — no serde). This
//! module is the single shared implementation: a [`JsonWriter`] that
//! tracks nesting and commas so call sites cannot emit structurally
//! invalid documents, plus [`validate`], a small recursive-descent
//! syntax checker used by tests and CI gates. `bench_harness::json`
//! re-exports this module for the harness binaries.

/// Escape `s` as JSON string *contents* (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Streaming JSON writer with automatic comma/nesting management.
///
/// ```
/// use telemetry::json::JsonWriter;
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.key("name").string("triad");
/// w.key("gbps").number(1352.5);
/// w.key("tags").begin_array();
/// w.string("gpu").string("stream");
/// w.end_array();
/// w.end_object();
/// assert_eq!(
///     w.finish(),
///     r#"{"name": "triad", "gbps": 1352.5, "tags": ["gpu", "stream"]}"#
/// );
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One flag per open container: does the next element need a comma?
    needs_comma: Vec<bool>,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> JsonWriter {
        JsonWriter::default()
    }

    fn pre_value(&mut self) {
        if let Some(nc) = self.needs_comma.last_mut() {
            if *nc {
                self.out.push_str(", ");
            }
            *nc = true;
        }
    }

    /// Open `{`.
    pub fn begin_object(&mut self) -> &mut Self {
        self.pre_value();
        self.out.push('{');
        self.needs_comma.push(false);
        self
    }

    /// Close `}`.
    pub fn end_object(&mut self) -> &mut Self {
        self.needs_comma.pop();
        self.out.push('}');
        self
    }

    /// Open `[`.
    pub fn begin_array(&mut self) -> &mut Self {
        self.pre_value();
        self.out.push('[');
        self.needs_comma.push(false);
        self
    }

    /// Close `]`.
    pub fn end_array(&mut self) -> &mut Self {
        self.needs_comma.pop();
        self.out.push(']');
        self
    }

    /// Emit `"name": ` for the next value in an object.
    pub fn key(&mut self, name: &str) -> &mut Self {
        self.pre_value();
        self.out.push('"');
        self.out.push_str(&escape(name));
        self.out.push_str("\": ");
        // The value that follows must not add its own comma.
        if let Some(nc) = self.needs_comma.last_mut() {
            *nc = false;
        }
        self
    }

    /// A string value.
    pub fn string(&mut self, v: &str) -> &mut Self {
        self.pre_value();
        self.out.push('"');
        self.out.push_str(&escape(v));
        self.out.push('"');
        self
    }

    /// A float value (non-finite values become `null`, which JSON
    /// requires).
    pub fn number(&mut self, v: f64) -> &mut Self {
        self.pre_value();
        if v.is_finite() {
            // Shortest round-trippable form Rust prints; always contains
            // a digit, never `inf`/`NaN` here.
            let s = format!("{v}");
            self.out.push_str(&s);
        } else {
            self.out.push_str("null");
        }
        self
    }

    /// An integer value.
    pub fn int(&mut self, v: u64) -> &mut Self {
        self.pre_value();
        self.out.push_str(&v.to_string());
        self
    }

    /// A boolean value.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.pre_value();
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// The document text (call once, after the root value is closed).
    pub fn finish(self) -> String {
        debug_assert!(self.needs_comma.is_empty(), "unclosed JSON container");
        self.out
    }
}

/// Check that `s` is one syntactically valid JSON document. Returns the
/// byte offset and a message on the first error. (A syntax checker, not
/// a parser: no values are materialised.)
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
        None => Err(format!("unexpected end of input at {pos}", pos = *pos)),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // opening '"'
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                match b.get(*pos + 1) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                    Some(b'u') => {
                        let hex = b.get(*pos + 2..*pos + 6).ok_or("truncated \\u escape")?;
                        if !hex.iter().all(u8::is_ascii_hexdigit) {
                            return Err(format!("bad \\u escape at byte {}", *pos));
                        }
                        *pos += 6;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                };
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at {}", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_owned())
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("expected digits at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("expected fraction digits at byte {}", *pos));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("expected exponent digits at byte {}", *pos));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_handles_nesting_and_commas() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a").int(1);
        w.key("b").begin_array();
        w.begin_object();
        w.key("x").bool(true);
        w.end_object();
        w.number(2.5);
        w.string("s");
        w.end_array();
        w.key("c").string("q\"uote");
        w.end_object();
        let doc = w.finish();
        assert_eq!(
            doc,
            r#"{"a": 1, "b": [{"x": true}, 2.5, "s"], "c": "q\"uote"}"#
        );
        validate(&doc).unwrap();
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.number(f64::NAN).number(f64::INFINITY).number(1.0);
        w.end_array();
        let doc = w.finish();
        assert_eq!(doc, "[null, null, 1]");
        validate(&doc).unwrap();
    }

    #[test]
    fn validator_accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            r#"{"k": [1, 2, {"x": "yé"}], "e": false}"#,
            "  { \"a\" : [ ] }\n",
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1, ]",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "\"unterminated",
            "01a",
            "{} trailing",
            "[1 2]",
            "nul",
        ] {
            assert!(validate(doc).is_err(), "accepted malformed: {doc:?}");
        }
    }

    #[test]
    fn escape_covers_control_characters() {
        assert_eq!(escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}
