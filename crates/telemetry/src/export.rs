//! Exporters: Chrome `trace_event` JSON and per-kernel aggregates.
//!
//! The Chrome format (one object with a `traceEvents` array of complete
//! `"ph": "X"` events) loads directly in `chrome://tracing` and
//! Perfetto. The aggregate table is the paper's per-kernel profiling
//! view computed from the trace instead of the simulated ledger: count,
//! total/mean/p99 wall time, plus the simulated seconds and effective
//! footprint bytes each kernel's launches carried — from which the
//! achieved GB/s falls out.

use crate::counters::CounterSnapshot;
use crate::json::JsonWriter;
use crate::ring::{Event, SpanKind};
use std::collections::HashMap;

/// Write one event as a Chrome `trace_event` object. `pid` is the
/// process identity under which the event is attributed (the study
/// worker slot in a multi-process run, 0 for a solo process).
fn chrome_event(w: &mut JsonWriter, e: &Event, pid: u32) {
    w.begin_object();
    w.key("name").string(e.name.as_str());
    w.key("cat").string(e.kind.label());
    w.key("ph").string("X");
    // Chrome wants microseconds; keep sub-µs precision as a fraction.
    w.key("ts").number(e.start_ns as f64 / 1e3);
    w.key("dur").number(e.dur_ns as f64 / 1e3);
    w.key("pid").int(pid as u64);
    w.key("tid").int(e.thread as u64);
    w.key("args").begin_object();
    w.key("items").int(e.items);
    w.key("bytes").number(e.bytes);
    w.key("sim_ms").number(e.sim_secs * 1e3);
    w.key("seq").int(e.seq);
    w.end_object();
    w.end_object();
}

/// The `process_name` metadata record Perfetto uses to label a process
/// track. Phase `"M"` events carry no duration; the `cat` key is kept
/// so consumers that index every event by category don't have to
/// special-case metadata.
fn process_name_event(w: &mut JsonWriter, pid: u32, label: &str) {
    w.begin_object();
    w.key("name").string("process_name");
    w.key("cat").string("meta");
    w.key("ph").string("M");
    w.key("pid").int(pid as u64);
    w.key("tid").int(0);
    w.key("args").begin_object();
    w.key("name").string(label);
    w.end_object();
    w.end_object();
}

/// Write the `traceEvents` array (just the array — callers embed it in
/// their own document, as the `profile` binary does). When a process
/// identity has been installed ([`crate::set_process_ident`]) every
/// span is attributed to that pid and the array opens with a
/// `process_name` metadata event naming the worker.
pub fn chrome_trace_events(w: &mut JsonWriter, events: &[Event]) {
    let ident = crate::process_ident();
    let pid = ident.as_ref().map_or(0, |(id, _)| *id);
    w.begin_array();
    if let Some((id, label)) = &ident {
        process_name_event(w, *id, label);
    }
    for e in events {
        chrome_event(w, e, pid);
    }
    w.end_array();
}

/// A complete, standalone Chrome-trace document for `events`.
pub fn chrome_trace(events: &[Event]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("displayTimeUnit").string("ms");
    w.key("traceEvents");
    chrome_trace_events(&mut w, events);
    w.end_object();
    w.finish()
}

/// A Chrome flow-event *start* (`ph: "s"`). Paired with a
/// [`flow_finish`] carrying the same `id`, Perfetto draws an arrow from
/// the slice enclosing this point to the slice enclosing the finish —
/// including across pids, which is how the fleet trace shows
/// orchestrator-dispatch → worker-execution → result causality.
pub fn flow_start(w: &mut JsonWriter, name: &str, id: u64, ts_us: f64, pid: u32, tid: u32) {
    flow_event(w, "s", name, id, ts_us, pid, tid);
}

/// The matching flow-event *finish* (`ph: "f"`, binding to the
/// enclosing slice via `bp: "e"`).
pub fn flow_finish(w: &mut JsonWriter, name: &str, id: u64, ts_us: f64, pid: u32, tid: u32) {
    flow_event(w, "f", name, id, ts_us, pid, tid);
}

fn flow_event(w: &mut JsonWriter, ph: &str, name: &str, id: u64, ts_us: f64, pid: u32, tid: u32) {
    w.begin_object();
    w.key("name").string(name);
    w.key("cat").string("flow");
    w.key("ph").string(ph);
    if ph == "f" {
        // Bind the arrow head to the *enclosing* slice, not the next
        // one to start — the worker's unit slice is already open when
        // the flow lands.
        w.key("bp").string("e");
    }
    w.key("id").int(id);
    w.key("ts").number(ts_us);
    w.key("pid").int(pid as u64);
    w.key("tid").int(tid as u64);
    w.end_object();
}

/// Per-kernel aggregate over the launch spans of a trace.
#[derive(Debug, Clone)]
pub struct KernelAgg {
    pub name: String,
    /// Launches of this kernel in the trace.
    pub count: usize,
    /// Total / mean wall-clock time of the launch spans, seconds.
    pub total_secs: f64,
    pub mean_secs: f64,
    /// Wall-clock percentiles of the launch spans, seconds.
    pub p50_secs: f64,
    pub p95_secs: f64,
    pub p99_secs: f64,
    /// Total simulated seconds the launches were priced at.
    pub sim_secs: f64,
    /// Total effective footprint bytes.
    pub bytes: f64,
}

impl KernelAgg {
    /// Achieved bandwidth under the *simulated* clock (the paper's
    /// achieved-GB/s view: effective bytes over priced seconds).
    pub fn sim_gbps(&self) -> f64 {
        if self.sim_secs > 0.0 {
            self.bytes / self.sim_secs / 1e9
        } else {
            0.0
        }
    }
}

/// Aggregate the [`SpanKind::Launch`] spans of `events` by kernel name,
/// sorted by total wall time, descending.
pub fn aggregate(events: &[Event]) -> Vec<KernelAgg> {
    let mut durs: HashMap<&str, Vec<u64>> = HashMap::new();
    let mut sums: HashMap<&str, (f64, f64)> = HashMap::new();
    for e in events.iter().filter(|e| e.kind == SpanKind::Launch) {
        durs.entry(e.name.as_str()).or_default().push(e.dur_ns);
        let s = sums.entry(e.name.as_str()).or_insert((0.0, 0.0));
        s.0 += e.sim_secs;
        s.1 += e.bytes;
    }
    let mut out: Vec<KernelAgg> = durs
        .into_iter()
        .map(|(name, mut d)| {
            d.sort_unstable();
            let total_ns: u64 = d.iter().sum();
            // Nearest-rank percentile of the sorted durations.
            let pctl = |q: f64| d[((d.len() as f64 * q).ceil() as usize).clamp(1, d.len()) - 1];
            let (sim_secs, bytes) = sums[name];
            KernelAgg {
                name: name.to_owned(),
                count: d.len(),
                total_secs: total_ns as f64 / 1e9,
                mean_secs: total_ns as f64 / 1e9 / d.len() as f64,
                p50_secs: pctl(0.50) as f64 / 1e9,
                p95_secs: pctl(0.95) as f64 / 1e9,
                p99_secs: pctl(0.99) as f64 / 1e9,
                sim_secs,
                bytes,
            }
        })
        .collect();
    out.sort_by(|a, b| b.total_secs.total_cmp(&a.total_secs));
    out
}

/// The warning line emitted when a trace lost spans to ring overwrite.
fn dropped_warning(spans_dropped: u64) -> String {
    format!(
        "{spans_dropped} span(s) dropped by ring overwrite — this trace is INCOMPLETE; \
         raise TelemetryConfig::ring_capacity"
    )
}

/// Render the aggregate as a text table. A nonzero `spans_dropped`
/// (from the counter delta over the traced interval) prepends a loud
/// warning header — a truncated trace must not look complete.
pub fn aggregate_text(aggs: &[KernelAgg], spans_dropped: u64) -> String {
    let mut out = String::new();
    if spans_dropped > 0 {
        out.push_str(&format!(
            "!!! WARNING: {}\n",
            dropped_warning(spans_dropped)
        ));
    }
    out.push_str(
        "kernel                 launches   wall-ms  mean-us   p50-us   p95-us   p99-us    sim-ms  GB/s(sim)\n",
    );
    for a in aggs {
        out.push_str(&format!(
            "{:22} {:8} {:9.3} {:8.1} {:8.1} {:8.1} {:8.1} {:9.3} {:10.1}\n",
            a.name,
            a.count,
            a.total_secs * 1e3,
            a.mean_secs * 1e6,
            a.p50_secs * 1e6,
            a.p95_secs * 1e6,
            a.p99_secs * 1e6,
            a.sim_secs * 1e3,
            a.sim_gbps(),
        ));
    }
    out
}

/// Write the aggregate as a JSON object: `spans_dropped` (plus a
/// `warning` string when nonzero) and the per-kernel `kernels` array.
pub fn aggregate_json(w: &mut JsonWriter, aggs: &[KernelAgg], spans_dropped: u64) {
    w.begin_object();
    w.key("spans_dropped").int(spans_dropped);
    if spans_dropped > 0 {
        w.key("warning").string(&dropped_warning(spans_dropped));
    }
    w.key("kernels").begin_array();
    for a in aggs {
        w.begin_object();
        w.key("kernel").string(&a.name);
        w.key("launches").int(a.count as u64);
        w.key("wall_secs").number(a.total_secs);
        w.key("mean_secs").number(a.mean_secs);
        w.key("p50_secs").number(a.p50_secs);
        w.key("p95_secs").number(a.p95_secs);
        w.key("p99_secs").number(a.p99_secs);
        w.key("sim_secs").number(a.sim_secs);
        w.key("bytes").number(a.bytes);
        w.key("sim_gbps").number(a.sim_gbps());
        w.end_object();
    }
    w.end_array();
    w.end_object();
}

/// Write a counter snapshot as a JSON object.
pub fn counters_json(w: &mut JsonWriter, c: &CounterSnapshot) {
    w.begin_object();
    w.key("launches").int(c.launches);
    w.key("pricing_cache_hits").int(c.pricing_cache_hits);
    w.key("pricing_cache_misses").int(c.pricing_cache_misses);
    w.key("regions").int(c.regions);
    w.key("steals").int(c.steals);
    w.key("parks").int(c.parks);
    w.key("wakes").int(c.wakes);
    w.key("bytes_moved").int(c.bytes_moved);
    w.key("spans_dropped").int(c.spans_dropped);
    w.end_object();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::Name;

    fn ev(name: &'static str, kind: SpanKind, start: u64, dur: u64, bytes: f64, sim: f64) -> Event {
        Event {
            seq: start,
            kind,
            name: Name::Static(name),
            start_ns: start,
            dur_ns: dur,
            thread: 0,
            items: 10,
            bytes,
            sim_secs: sim,
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_one_event_per_span() {
        let events = vec![
            ev("a", SpanKind::Launch, 100, 50, 8e6, 1e-4),
            ev("r", SpanKind::Region, 120, 20, 0.0, 0.0),
        ];
        let doc = chrome_trace(&events);
        crate::json::validate(&doc).unwrap();
        assert_eq!(doc.matches("\"ph\": \"X\"").count(), 2);
        assert!(doc.contains("\"cat\": \"launch\""));
        assert!(doc.contains("\"cat\": \"region\""));
    }

    #[test]
    fn aggregate_groups_by_kernel_and_computes_p99() {
        let mut events: Vec<Event> = (0..100)
            .map(|i| ev("k", SpanKind::Launch, i, 1000 + i * 10, 1e6, 1e-5))
            .collect();
        events.push(ev("other", SpanKind::Launch, 1000, 5, 2e6, 2e-5));
        events.push(ev("noise", SpanKind::Region, 1001, 999_999, 0.0, 0.0));
        let aggs = aggregate(&events);
        assert_eq!(aggs.len(), 2, "region spans are not kernels");
        let k = aggs.iter().find(|a| a.name == "k").unwrap();
        assert_eq!(k.count, 100);
        // Percentiles of durations 1000..1990 step 10 (nearest rank).
        assert_eq!(k.p50_secs, 1490.0 / 1e9);
        assert_eq!(k.p95_secs, 1940.0 / 1e9);
        assert_eq!(k.p99_secs, 1980.0 / 1e9);
        assert!((k.bytes - 100e6).abs() < 1.0);
        assert!((k.sim_gbps() - 100e6 / 1e-3 / 1e9).abs() < 1e-9);
        // Sorted by total wall time: "k" dominates.
        assert_eq!(aggs[0].name, "k");
    }

    #[test]
    fn aggregate_renders_as_table_and_json() {
        let events = vec![ev("triad", SpanKind::Launch, 0, 1_000_000, 24e6, 1e-3)];
        let aggs = aggregate(&events);
        let text = aggregate_text(&aggs, 0);
        assert!(text.contains("triad"));
        assert!(text.contains("p50-us") && text.contains("p95-us"));
        assert!(!text.contains("WARNING"));
        let mut w = JsonWriter::new();
        aggregate_json(&mut w, &aggs, 0);
        let doc = w.finish();
        crate::json::validate(&doc).unwrap();
        assert!(doc.contains("\"kernel\": \"triad\""));
        assert!(doc.contains("\"p50_secs\"") && doc.contains("\"p95_secs\""));
        assert!(doc.contains("\"spans_dropped\": 0"));
        assert!(!doc.contains("warning"));
    }

    #[test]
    fn dropped_spans_make_both_outputs_shout() {
        let events = vec![ev("triad", SpanKind::Launch, 0, 1_000_000, 24e6, 1e-3)];
        let aggs = aggregate(&events);
        let text = aggregate_text(&aggs, 17);
        assert!(
            text.starts_with("!!! WARNING: 17 span(s) dropped"),
            "{text}"
        );
        assert!(text.contains("INCOMPLETE"));
        let mut w = JsonWriter::new();
        aggregate_json(&mut w, &aggs, 17);
        let doc = w.finish();
        crate::json::validate(&doc).unwrap();
        assert!(doc.contains("\"spans_dropped\": 17"));
        assert!(doc.contains("\"warning\""));
        assert!(doc.contains("INCOMPLETE"));
    }

    #[test]
    fn counters_serialise() {
        let mut w = JsonWriter::new();
        counters_json(
            &mut w,
            &CounterSnapshot {
                launches: 3,
                ..Default::default()
            },
        );
        let doc = w.finish();
        crate::json::validate(&doc).unwrap();
        assert!(doc.contains("\"launches\": 3"));
    }
}
