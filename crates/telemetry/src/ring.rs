//! Per-thread ring-buffer trace recorders.
//!
//! Every thread that records a span owns one [`Ring`]: a bounded
//! `VecDeque` of [`Event`]s behind its own mutex. Recording locks only
//! the recorder's *own* ring — uncontended in the steady state, since
//! the only other party that ever touches it is [`flush`] — so the
//! enabled path is one timestamp, one uncontended lock, one push.
//! Rings are registered in a process-wide list and outlive their
//! threads (the registry holds an `Arc`), so worker-thread events are
//! never lost to thread exit.
//!
//! When a ring is full the oldest event is overwritten (and counted in
//! [`Counters::spans_dropped`](crate::Counters::spans_dropped)): tracing
//! a long run degrades to "most recent window" instead of unbounded
//! memory.
//!
//! ## Ordering
//!
//! Each event takes a ticket from one global atomic sequence when it is
//! recorded (= when its span *finishes*). [`flush`] drains every ring
//! and sorts by that sequence, so the returned list is monotonically
//! ordered by real finish order even across threads — a span that
//! happened-after another is always later in the flush.

use crate::counters::{counters, Counters};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Default per-thread ring capacity, in events.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Capacity applied to rings created from now on.
static DEFAULT_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);

/// Global finish-order sequence (0 is reserved as "unset").
static SEQ: AtomicU64 = AtomicU64::new(1);

/// Swallow poison: a panicked recorder leaves a structurally intact
/// ring, and span data carries no invariants beyond its own fields.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Nanoseconds since the process-wide trace epoch (first use).
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// What a span measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// One kernel launch through a session (pricing + functional body).
    Launch,
    /// One parallel region on the thread pool.
    Region,
    /// One deterministic tree reduction.
    Reduce,
    /// One named application phase (e.g. a CloverLeaf `advec_cell`
    /// sweep): a group of launches under one algorithmic step.
    Phase,
    /// One launch-graph replay (a batch of launches priced in one pass
    /// and committed under a single ledger lock).
    Replay,
    /// One admitted submission on a service shard.
    Shard,
    /// One study unit executing on a worker (the outermost span a
    /// worker's flight recording opens — the crash-attribution anchor).
    Unit,
}

impl SpanKind {
    /// Lower-case label (Chrome-trace category, table rows).
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Launch => "launch",
            SpanKind::Region => "region",
            SpanKind::Reduce => "reduce",
            SpanKind::Phase => "phase",
            SpanKind::Replay => "replay",
            SpanKind::Shard => "shard",
            SpanKind::Unit => "unit",
        }
    }
}

/// A span name that avoids allocating on the hot path: kernel names are
/// already interned `Arc<str>`s in the session, engine-internal spans
/// are static strings.
#[derive(Debug, Clone)]
pub enum Name {
    Static(&'static str),
    Shared(Arc<str>),
}

impl Name {
    /// The name text.
    pub fn as_str(&self) -> &str {
        match self {
            Name::Static(s) => s,
            Name::Shared(s) => s,
        }
    }
}

impl From<&'static str> for Name {
    fn from(s: &'static str) -> Name {
        Name::Static(s)
    }
}

impl From<Arc<str>> for Name {
    fn from(s: Arc<str>) -> Name {
        Name::Shared(s)
    }
}

/// One recorded span.
#[derive(Debug, Clone)]
pub struct Event {
    /// Global finish-order ticket (strictly increasing across threads).
    pub seq: u64,
    pub kind: SpanKind,
    pub name: Name,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Recording thread (ring registration index).
    pub thread: u32,
    /// Items processed (loop points, chunks, set elements; 0 if n/a).
    pub items: u64,
    /// Effective footprint bytes attached to the span (0.0 if n/a).
    pub bytes: f64,
    /// Simulated seconds the launch was priced at (0.0 if n/a).
    pub sim_secs: f64,
}

/// Bounded event buffer for one thread.
struct Ring {
    buf: VecDeque<Event>,
    cap: usize,
    thread: u32,
}

impl Ring {
    fn push(&mut self, ev: Event) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            Counters::add(&counters().spans_dropped, 1);
        }
        self.buf.push_back(ev);
    }
}

/// Every ring ever created, in registration order.
static REGISTRY: Mutex<Vec<Arc<Mutex<Ring>>>> = Mutex::new(Vec::new());

thread_local! {
    static TL_RING: Arc<Mutex<Ring>> = {
        let mut reg = lock(&REGISTRY);
        let ring = Arc::new(Mutex::new(Ring {
            buf: VecDeque::new(),
            cap: DEFAULT_CAPACITY.load(Ordering::Relaxed),
            thread: reg.len() as u32,
        }));
        reg.push(Arc::clone(&ring));
        ring
    };
}

/// Set the capacity used by rings created after this call (existing
/// rings keep theirs — capacity is fixed at first record per thread).
pub(crate) fn set_default_capacity(cap: usize) {
    DEFAULT_CAPACITY.store(cap.max(1), Ordering::Relaxed);
}

/// Append a finished span to the calling thread's ring.
fn record(kind: SpanKind, name: Name, start_ns: u64, items: u64, bytes: f64, sim_secs: f64) {
    let end = now_ns();
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    TL_RING.with(|ring| {
        let mut r = lock(ring);
        let thread = r.thread;
        r.push(Event {
            seq,
            kind,
            name,
            start_ns,
            dur_ns: end.saturating_sub(start_ns),
            thread,
            items,
            bytes,
            sim_secs,
        });
    });
}

/// A running span. Construction is the *single branch* instrumentation
/// sites pay when telemetry is disabled: [`SpanTimer::start`] returns
/// `None` without taking a timestamp.
#[derive(Debug)]
pub struct SpanTimer {
    start: u64,
}

impl SpanTimer {
    /// Begin a span if telemetry is enabled.
    #[inline]
    pub fn start() -> Option<SpanTimer> {
        if !crate::enabled() {
            return None;
        }
        Some(SpanTimer { start: now_ns() })
    }

    /// When the span began (ns since the trace epoch).
    pub fn start_ns(&self) -> u64 {
        self.start
    }

    /// Finish the span and record it on the calling thread's ring.
    pub fn finish(self, kind: SpanKind, name: impl Into<Name>, items: u64, bytes: f64) {
        record(kind, name.into(), self.start, items, bytes, 0.0);
    }

    /// [`SpanTimer::finish`] also attaching the simulated seconds the
    /// launch was priced at.
    pub fn finish_timed(
        self,
        kind: SpanKind,
        name: impl Into<Name>,
        items: u64,
        bytes: f64,
        sim_secs: f64,
    ) {
        record(kind, name.into(), self.start, items, bytes, sim_secs);
    }
}

/// Drain every thread's ring into one list, monotonically ordered by
/// the global finish sequence. Flushed events are removed from their
/// rings; counters are left untouched.
pub fn flush() -> Vec<Event> {
    let rings: Vec<Arc<Mutex<Ring>>> = lock(&REGISTRY).iter().map(Arc::clone).collect();
    let mut out = Vec::new();
    for ring in rings {
        let mut r = lock(&ring);
        out.extend(r.buf.drain(..));
    }
    out.sort_by_key(|e| e.seq);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_avoid_allocation_for_the_two_hot_cases() {
        let s: Name = "static".into();
        assert_eq!(s.as_str(), "static");
        let a: Arc<str> = Arc::from("shared");
        let n: Name = Name::Shared(Arc::clone(&a));
        assert_eq!(n.as_str(), "shared");
        // Cloning a shared name bumps a refcount, it does not copy text.
        let n2 = n.clone();
        assert_eq!(Arc::strong_count(&a), 3);
        drop((n, n2));
    }

    #[test]
    fn span_kind_labels() {
        assert_eq!(SpanKind::Launch.label(), "launch");
        assert_eq!(SpanKind::Region.label(), "region");
        assert_eq!(SpanKind::Reduce.label(), "reduce");
        assert_eq!(SpanKind::Phase.label(), "phase");
        assert_eq!(SpanKind::Replay.label(), "replay");
        assert_eq!(SpanKind::Shard.label(), "shard");
        assert_eq!(SpanKind::Unit.label(), "unit");
    }

    #[test]
    fn now_ns_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
