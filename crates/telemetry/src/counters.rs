//! Process-wide engine counters.
//!
//! Plain relaxed `AtomicU64`s: increments never order against anything —
//! they are statistics, not synchronisation. Every bump site is guarded
//! by [`crate::enabled`], so the disabled path costs one branch.

use std::sync::atomic::{AtomicU64, Ordering};

/// The engine's counter set. All fields count monotonically from
/// process start (counters are never reset — diff two
/// [snapshots](Counters::snapshot) to measure an interval).
#[derive(Debug, Default)]
pub struct Counters {
    /// Kernel launches priced through a session.
    pub launches: AtomicU64,
    /// Launch-pricing cache hits (fingerprint found and field-verified).
    pub pricing_cache_hits: AtomicU64,
    /// Launch-pricing cache misses (cache enabled, but a full
    /// toolchain-model walk was needed).
    pub pricing_cache_misses: AtomicU64,
    /// Parallel regions executed by the pool (inline fast path included).
    pub regions: AtomicU64,
    /// Chunks claimed from a dynamic region's shared cursor by a worker
    /// lane (i.e. taken off the calling thread's plate).
    pub steals: AtomicU64,
    /// Times a worker gave up spinning and parked on the condvar.
    pub parks: AtomicU64,
    /// Times a parked worker woke to adopt a region.
    pub wakes: AtomicU64,
    /// Effective (compulsory-DRAM-rule) bytes of all priced launches.
    pub bytes_moved: AtomicU64,
    /// Span events overwritten by ring wrap before they were flushed.
    pub spans_dropped: AtomicU64,
}

impl Counters {
    /// Add `n` to a counter — call sites pick the field.
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// A coherent-enough copy of every counter (each field is read
    /// relaxed; the set is not a consistent cut, which is fine for
    /// statistics).
    pub fn snapshot(&self) -> CounterSnapshot {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        CounterSnapshot {
            launches: g(&self.launches),
            pricing_cache_hits: g(&self.pricing_cache_hits),
            pricing_cache_misses: g(&self.pricing_cache_misses),
            regions: g(&self.regions),
            steals: g(&self.steals),
            parks: g(&self.parks),
            wakes: g(&self.wakes),
            bytes_moved: g(&self.bytes_moved),
            spans_dropped: g(&self.spans_dropped),
        }
    }
}

/// Plain-value copy of [`Counters`] at one moment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    pub launches: u64,
    pub pricing_cache_hits: u64,
    pub pricing_cache_misses: u64,
    pub regions: u64,
    pub steals: u64,
    pub parks: u64,
    pub wakes: u64,
    pub bytes_moved: u64,
    pub spans_dropped: u64,
}

impl CounterSnapshot {
    /// Field-by-field difference against an earlier snapshot.
    pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            launches: self.launches - earlier.launches,
            pricing_cache_hits: self.pricing_cache_hits - earlier.pricing_cache_hits,
            pricing_cache_misses: self.pricing_cache_misses - earlier.pricing_cache_misses,
            regions: self.regions - earlier.regions,
            steals: self.steals - earlier.steals,
            parks: self.parks - earlier.parks,
            wakes: self.wakes - earlier.wakes,
            bytes_moved: self.bytes_moved - earlier.bytes_moved,
            spans_dropped: self.spans_dropped - earlier.spans_dropped,
        }
    }

    /// Per-interval counters for a bench iteration: what happened
    /// between `earlier` and this snapshot. (Alias of
    /// [`CounterSnapshot::since`] under the name bench loops read
    /// naturally: `after.delta(&before)`.)
    pub fn delta(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        self.since(earlier)
    }
}

/// The process-wide counter set.
pub fn counters() -> &'static Counters {
    static COUNTERS: Counters = Counters {
        launches: AtomicU64::new(0),
        pricing_cache_hits: AtomicU64::new(0),
        pricing_cache_misses: AtomicU64::new(0),
        regions: AtomicU64::new(0),
        steals: AtomicU64::new(0),
        parks: AtomicU64::new(0),
        wakes: AtomicU64::new(0),
        bytes_moved: AtomicU64::new(0),
        spans_dropped: AtomicU64::new(0),
    };
    &COUNTERS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_diff_is_per_field() {
        let a = CounterSnapshot {
            launches: 10,
            steals: 3,
            ..Default::default()
        };
        let b = CounterSnapshot {
            launches: 25,
            steals: 7,
            wakes: 2,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.launches, 15);
        assert_eq!(d.steals, 4);
        assert_eq!(d.wakes, 2);
        assert_eq!(d.parks, 0);
    }

    #[test]
    fn global_counters_accumulate() {
        let before = counters().snapshot();
        Counters::add(&counters().bytes_moved, 128);
        Counters::add(&counters().bytes_moved, 72);
        let after = counters().snapshot();
        assert!(after.since(&before).bytes_moved >= 200);
    }
}
