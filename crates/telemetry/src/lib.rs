//! # telemetry — tracing, counters and profile export for the engine
//!
//! A lock-light, std-only observability layer threaded through the whole
//! stack (`core::session`, `parkit::pool`, the OPS/OP2 DSLs, the apps).
//! The paper's argument rests on *measured* runtimes and achieved-
//! bandwidth fractions, so the execution engine records where its time
//! goes as a first-class artifact instead of a black box.
//!
//! Three pieces:
//!
//! * **Spans** ([`SpanTimer`], [`Event`]) — nanosecond wall-clock spans
//!   recorded into per-thread ring buffers ([`ring`]). A span is one
//!   kernel launch ([`SpanKind::Launch`]), one pool region
//!   ([`SpanKind::Region`]) or one deterministic reduction
//!   ([`SpanKind::Reduce`]), carrying the kernel name, item count and
//!   footprint bytes. [`flush`] drains every thread's ring into one
//!   monotonically-ordered event list (ordered by a global finish
//!   sequence, so cross-thread ordering is exact, not approximate).
//! * **Counters** ([`counters`]) — process-wide relaxed atomics:
//!   launches, pricing-cache hits/misses, pool regions, steals,
//!   parks/wakes, effective bytes moved, spans dropped on ring wrap.
//! * **Exporters** ([`export`]) — Chrome `trace_event` JSON (loadable in
//!   `chrome://tracing` / Perfetto) and a per-kernel aggregate table
//!   (count, total/mean/p99 wall time, achieved GB/s from the footprint
//!   bytes), built on the shared [`json`] writer.
//! * **Flight recorder** ([`flight`]) — a crash-surviving binary
//!   append-only event log for multi-process studies: span opens and
//!   closes, causal trace marks, and counter snapshots written through
//!   an incremental-flush buffer, so a SIGKILL'd worker still leaves a
//!   readable, torn-tail-tolerant recording for post-mortem
//!   attribution (`blackbox`).
//!
//! ## Overhead budget
//!
//! Telemetry is compiled in everywhere but **disabled by default**. The
//! disabled path costs exactly one branch per instrumentation site: a
//! relaxed atomic load ([`enabled`]) guarding both span capture and
//! counter bumps. No allocation, no lock, no timestamp is taken unless a
//! [`TelemetryConfig`] with `enabled = true` has been installed — and
//! telemetry never feeds back into pricing or scheduling, so enabling it
//! cannot change a session ledger bit (`crates/core/tests/
//! telemetry_equiv.rs` proves this).

pub mod counters;
pub mod export;
pub mod flight;
pub mod json;
pub mod ring;
pub mod shadow;

pub use counters::{counters, CounterSnapshot, Counters};
pub use export::{aggregate, chrome_trace, chrome_trace_events};
pub use flight::{FlightEvent, FlightRecording, TraceRole};
pub use ring::{flush, now_ns, Event, Name, SpanKind, SpanTimer};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Process-wide on/off switch. Relaxed is enough: the flag is a pure
/// hint — a racing reader at worst records or skips one span.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Who this process is in a multi-process run: a small stable id (the
/// study worker slot) and a human label for trace viewers. Defaults to
/// `(0, None)` — a solo process — so single-process traces are
/// unchanged.
static PROCESS_IDENT: Mutex<Option<(u32, String)>> = Mutex::new(None);

/// Declare this process's identity for span attribution. Study workers
/// call this once at startup so every Chrome-trace event they export
/// carries their worker slot as the `pid`, and the trace names the
/// process (e.g. `worker-3`) in Perfetto's process list.
pub fn set_process_ident(id: u32, label: &str) {
    *PROCESS_IDENT.lock().unwrap() = Some((id, label.to_owned()));
}

/// The identity installed by [`set_process_ident`], if any.
pub fn process_ident() -> Option<(u32, String)> {
    PROCESS_IDENT.lock().unwrap().clone()
}

/// Is telemetry recording? This is the single branch the disabled path
/// pays at every instrumentation site.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// How telemetry behaves once [installed](TelemetryConfig::install).
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    enabled: bool,
    ring_capacity: usize,
}

impl TelemetryConfig {
    /// Recording off (the process default). Instrumentation sites cost
    /// one branch; ledgers and numerics are bit-identical to a build
    /// where telemetry was never attached.
    pub fn disabled() -> Self {
        TelemetryConfig {
            enabled: false,
            ring_capacity: ring::DEFAULT_RING_CAPACITY,
        }
    }

    /// Recording on with the default ring capacity.
    pub fn enabled() -> Self {
        TelemetryConfig {
            enabled: true,
            ring_capacity: ring::DEFAULT_RING_CAPACITY,
        }
    }

    /// Per-thread ring capacity in events. Applies to rings created
    /// after install (each thread allocates its ring on first record);
    /// when a ring wraps, the oldest events are overwritten and counted
    /// in [`Counters::spans_dropped`].
    pub fn ring_capacity(mut self, events: usize) -> Self {
        self.ring_capacity = events.max(1);
        self
    }

    /// Make this configuration the live one.
    pub fn install(self) {
        ring::set_default_capacity(self.ring_capacity);
        ENABLED.store(self.enabled, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_start_returns_none() {
        // The process default is disabled; a SpanTimer must not even
        // take a timestamp.
        assert!(!enabled());
        assert!(SpanTimer::start().is_none());
    }

    #[test]
    fn config_builder_clamps_capacity() {
        let cfg = TelemetryConfig::disabled().ring_capacity(0);
        assert_eq!(cfg.ring_capacity, 1);
    }
}
