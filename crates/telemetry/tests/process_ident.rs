//! Per-worker span attribution in the Chrome exporter.
//!
//! Lives in its own test binary because the process identity is
//! (deliberately) process-global: a study worker declares who it is
//! once, and every trace it exports afterwards is attributed to it.

use telemetry::json::JsonWriter;
use telemetry::{chrome_trace, chrome_trace_events, Event, Name, SpanKind};

fn launch(start: u64) -> Event {
    Event {
        seq: start,
        kind: SpanKind::Launch,
        name: Name::Static("triad"),
        start_ns: start,
        dur_ns: 50,
        thread: 1,
        items: 10,
        bytes: 8e6,
        sim_secs: 1e-4,
    }
}

#[test]
fn ident_attributes_pid_and_names_the_process() {
    // Before any identity is installed: solo-process defaults.
    let before = chrome_trace(&[launch(100)]);
    telemetry::json::validate(&before).unwrap();
    assert!(before.contains("\"pid\": 0"));
    assert!(!before.contains("process_name"));

    telemetry::set_process_ident(3, "worker-3");
    assert_eq!(telemetry::process_ident(), Some((3, "worker-3".into())));

    let mut w = JsonWriter::new();
    chrome_trace_events(&mut w, &[launch(100), launch(200)]);
    let doc = w.finish();
    telemetry::json::validate(&doc).unwrap();
    // Every span carries the worker's pid...
    assert_eq!(doc.matches("\"pid\": 3").count(), 3);
    assert!(!doc.contains("\"pid\": 0"));
    // ...and the array opens with a process_name metadata event that
    // still has a `cat` (consumers index every event by category).
    assert!(doc.contains("\"name\": \"process_name\""));
    assert!(doc.contains("\"ph\": \"M\""));
    assert!(doc.contains("\"cat\": \"meta\""));
    assert!(doc.contains("\"name\": \"worker-3\""));
    assert_eq!(doc.matches("\"ph\": \"X\"").count(), 2);
}
