//! Torn-recording torture tests for `telemetry::flight`.
//!
//! The flight recorder's whole reason to exist is that a SIGKILL can
//! land between any two bytes and the file must still be readable up
//! to the tear. These tests prove that byte-exactly: a real recording
//! is produced through the public writer API, then truncated at
//! *every* byte offset — each cut must either be rejected as a
//! non-recording (header cuts) or decode as a clean prefix of the
//! full event stream with `torn` set appropriately. Hostile bytes
//! (alien magic, future versions, unknown tags) get the same
//! treatment.
//!
//! The writer is process-global, so the recording is built exactly
//! once behind a `OnceLock` and every test reads the same bytes.

use std::sync::OnceLock;
use telemetry::flight::{self, TraceRole, VERSION};
use telemetry::{FlightEvent, FlightRecording, SpanKind};

const LABEL: &str = "torn-suite";
const WORKER: u32 = 9;

/// Magic + version + worker + pid + start + u16 label length.
const HEADER_LEN: usize = 4 + 2 + 4 + 4 + 8 + 2 + LABEL.len();

/// One real recording, produced through the public writer API.
fn bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let path = std::env::temp_dir().join(format!("flight-torn-{}.bin", std::process::id()));
        flight::start(&path, WORKER, LABEL).expect("start recorder");
        flight::span_open(SpanKind::Phase, "measure");
        flight::trace_mark(TraceRole::Begin, 7, 3, 1, "spmv@cpu");
        flight::span_open(SpanKind::Launch, "spmv");
        flight::counters_mark();
        flight::span_close(SpanKind::Launch, "spmv");
        flight::peak_rss(12_345);
        flight::span_close(SpanKind::Phase, "measure");
        flight::stop().expect("recorder was on");
        let raw = std::fs::read(&path).expect("read recording");
        std::fs::remove_file(&path).ok();
        raw
    })
}

fn full() -> FlightRecording {
    FlightRecording::parse(bytes()).expect("full recording parses")
}

#[test]
fn full_recording_round_trips() {
    let rec = full();
    assert!(!rec.torn, "an intact file is not torn");
    assert_eq!(rec.worker, WORKER);
    assert_eq!(rec.pid, std::process::id());
    assert_eq!(rec.label, LABEL);
    assert_eq!(rec.events.len(), 7, "every event made it to disk");
    assert!(matches!(
        rec.events[0],
        FlightEvent::SpanOpen {
            kind: SpanKind::Phase,
            ..
        }
    ));
    assert!(matches!(
        rec.events[1],
        FlightEvent::TraceMark {
            role: TraceRole::Begin,
            trace: 7,
            unit: 3,
            attempt: 1,
            ..
        }
    ));
    assert!(matches!(
        rec.events[5],
        FlightEvent::PeakRss { kb: 12_345, .. }
    ));
    // Timestamps are unix-epoch and monotone within the recording.
    let ts: Vec<u64> = rec.events.iter().map(|e| e.t_ns()).collect();
    assert!(ts.windows(2).all(|w| w[0] <= w[1]), "timestamps regress");
}

/// The central claim: cut the file at EVERY byte offset. Header cuts
/// are hard errors (the file is not a recording); record-region cuts
/// decode to a prefix of the full stream, torn only when the cut
/// lands mid-record.
#[test]
fn every_truncation_is_a_hard_error_or_a_clean_prefix() {
    let raw = bytes();
    let whole = full();
    let mut prev_len = 0usize;
    for cut in 0..=raw.len() {
        let sliced = &raw[..cut];
        if cut < HEADER_LEN {
            assert!(
                FlightRecording::parse(sliced).is_err(),
                "cut at {cut}: a partial header must not parse"
            );
            continue;
        }
        let rec = FlightRecording::parse(sliced)
            .unwrap_or_else(|e| panic!("cut at {cut}: torn tail must still parse: {e}"));
        assert_eq!(
            rec.events,
            whole.events[..rec.events.len()],
            "cut at {cut}: decoded events are not a prefix"
        );
        assert!(
            rec.events.len() >= prev_len,
            "cut at {cut}: longer file decoded fewer events"
        );
        prev_len = rec.events.len();
        if cut == raw.len() {
            assert!(!rec.torn, "the intact file reported a tear");
        }
        // A tear can only land mid-record, so a torn decode never
        // claims the complete stream.
        if rec.torn {
            assert!(
                rec.events.len() < whole.events.len(),
                "cut at {cut}: torn recording claims all events"
            );
        }
    }
    assert_eq!(prev_len, whole.events.len());
}

#[test]
fn alien_magic_and_future_versions_are_rejected() {
    let raw = bytes();

    let mut bad_magic = raw.to_vec();
    bad_magic[0] = b'X';
    let err = FlightRecording::parse(&bad_magic).expect_err("alien magic accepted");
    assert!(err.contains("magic"), "unhelpful error: {err}");

    let mut future = raw.to_vec();
    let v = (VERSION + 1).to_le_bytes();
    future[4] = v[0];
    future[5] = v[1];
    let err = FlightRecording::parse(&future).expect_err("future version accepted");
    assert!(err.contains("version"), "unhelpful error: {err}");

    assert!(FlightRecording::parse(&[]).is_err());
    assert!(FlightRecording::parse(b"SYFR").is_err());
}

/// An unknown record tag (newer writer, or corruption) cannot be
/// framed, so it ends the recording at the last good event — served
/// as torn, never as an error and never as garbage events.
#[test]
fn unknown_tags_end_the_recording_at_the_last_good_event() {
    let raw = bytes();
    let whole = full();

    // Appended garbage after the final record.
    let mut appended = raw.to_vec();
    appended.extend_from_slice(&[0xFF; 9]);
    let rec = FlightRecording::parse(&appended).expect("tail garbage tolerated");
    assert!(rec.torn);
    assert_eq!(rec.events, whole.events, "good events survive tail garbage");

    // A corrupted tag byte mid-stream: everything before it is served.
    let mut corrupt = raw.to_vec();
    corrupt[HEADER_LEN] = 0xEE;
    let rec = FlightRecording::parse(&corrupt).expect("mid-stream corruption tolerated");
    assert!(rec.torn);
    assert!(rec.events.is_empty(), "no event precedes the corrupt tag");
}
