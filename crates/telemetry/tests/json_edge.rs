//! Edge-case coverage for `telemetry::json::JsonWriter` — the single
//! JSON emitter every manifest, trace export and the dashboard lean on.

use telemetry::json::{escape, validate, JsonWriter};

#[test]
fn every_control_character_is_escaped() {
    // All 32 C0 control characters must come out as escapes, never raw.
    let raw: String = (0u32..0x20).map(|c| char::from_u32(c).unwrap()).collect();
    let escaped = escape(&raw);
    assert!(escaped.chars().all(|c| (c as u32) >= 0x20), "{escaped:?}");
    // The short forms are used where JSON defines them.
    assert!(escaped.contains("\\n"));
    assert!(escaped.contains("\\r"));
    assert!(escaped.contains("\\t"));
    assert!(escaped.contains("\\u0000"));
    assert!(escaped.contains("\\u001f"));
    // And the result embeds into a valid document.
    let mut w = JsonWriter::new();
    w.string(&raw);
    validate(&w.finish()).unwrap();
}

#[test]
fn quotes_and_backslashes_round_trip_in_keys_and_values() {
    let nasty = r#"a"b\c"\"#;
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key(nasty).string(nasty);
    w.end_object();
    let doc = w.finish();
    validate(&doc).unwrap();
    assert_eq!(doc, r#"{"a\"b\\c\"\\": "a\"b\\c\"\\"}"#);
}

#[test]
fn windows_paths_survive() {
    let path = r"C:\bench\results\BENCH_engine.json";
    let mut w = JsonWriter::new();
    w.string(path);
    let doc = w.finish();
    validate(&doc).unwrap();
    assert_eq!(doc, r#""C:\\bench\\results\\BENCH_engine.json""#);
}

#[test]
fn non_finite_numbers_become_null_everywhere() {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("nan").number(f64::NAN);
    w.key("inf").number(f64::INFINITY);
    w.key("ninf").number(f64::NEG_INFINITY);
    w.key("fine").number(-0.0);
    w.end_object();
    let doc = w.finish();
    validate(&doc).unwrap();
    assert_eq!(
        doc,
        r#"{"nan": null, "inf": null, "ninf": null, "fine": -0}"#
    );
}

#[test]
fn extreme_but_finite_numbers_stay_numbers() {
    let mut w = JsonWriter::new();
    w.begin_array();
    for v in [f64::MAX, f64::MIN_POSITIVE, 5e-324, -1.7e308] {
        w.number(v);
    }
    w.end_array();
    let doc = w.finish();
    validate(&doc).unwrap();
    assert!(!doc.contains("null"));
}

#[test]
fn deep_nesting_writes_and_validates() {
    let mut w = JsonWriter::new();
    const DEPTH: usize = 200;
    for _ in 0..DEPTH {
        w.begin_object();
        w.key("a").begin_array();
        w.int(1);
    }
    for _ in 0..DEPTH {
        w.end_array();
        w.end_object();
    }
    let doc = w.finish();
    validate(&doc).unwrap();
    assert_eq!(doc.matches('{').count(), DEPTH);
    assert_eq!(doc.matches('[').count(), DEPTH);
}

#[test]
fn empty_containers_and_empty_strings() {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("").string("");
    w.key("o").begin_object();
    w.end_object();
    w.key("a").begin_array();
    w.end_array();
    w.end_object();
    let doc = w.finish();
    validate(&doc).unwrap();
    assert_eq!(doc, r#"{"": "", "o": {}, "a": []}"#);
}

#[test]
fn unicode_passes_through_unescaped() {
    let mut w = JsonWriter::new();
    w.string("héllo 世界 😀 — ∞");
    let doc = w.finish();
    validate(&doc).unwrap();
    assert_eq!(doc, "\"héllo 世界 😀 — ∞\"");
}

#[test]
fn comma_logic_survives_mixed_scalars_after_containers() {
    let mut w = JsonWriter::new();
    w.begin_array();
    w.begin_object();
    w.end_object();
    w.int(1);
    w.begin_array();
    w.end_array();
    w.bool(false);
    w.string("s");
    w.end_array();
    let doc = w.finish();
    validate(&doc).unwrap();
    assert_eq!(doc, r#"[{}, 1, [], false, "s"]"#);
}
