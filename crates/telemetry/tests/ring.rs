//! Ring-buffer semantics: overflow/wrap, drain-on-flush, and
//! cross-thread flush ordering.
//!
//! Telemetry state (the enabled flag, the ring registry, counters) is
//! process-global, so the tests in this file serialise on one mutex and
//! tag their spans with names unique to each test.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use telemetry::{counters, flush, Name, SpanKind, SpanTimer, TelemetryConfig};

static GATE: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

fn record_named(name: &'static str, items: u64) {
    let t = SpanTimer::start().expect("telemetry enabled");
    t.finish(SpanKind::Launch, name, items, 0.0);
}

#[test]
fn ring_overflow_keeps_the_newest_events_and_counts_drops() {
    let _g = serial();
    const CAP: usize = 8;
    const EXTRA: usize = 5;
    TelemetryConfig::enabled().ring_capacity(CAP).install();
    let dropped_before = counters().snapshot().spans_dropped;

    // A fresh thread gets a fresh ring at the just-installed capacity.
    std::thread::spawn(|| {
        for i in 0..(CAP + EXTRA) as u64 {
            record_named("wrap_test", i);
        }
    })
    .join()
    .unwrap();

    let events: Vec<_> = flush()
        .into_iter()
        .filter(|e| e.name.as_str() == "wrap_test")
        .collect();
    TelemetryConfig::disabled().install();

    // Exactly CAP survive, and they are the *newest* CAP: the oldest
    // EXTRA items were overwritten.
    assert_eq!(events.len(), CAP);
    let items: Vec<u64> = events.iter().map(|e| e.items).collect();
    let expect: Vec<u64> = (EXTRA as u64..(CAP + EXTRA) as u64).collect();
    assert_eq!(items, expect);
    assert_eq!(
        counters().snapshot().spans_dropped - dropped_before,
        EXTRA as u64
    );
}

#[test]
fn flush_drains_and_orders_across_threads() {
    let _g = serial();
    TelemetryConfig::enabled().ring_capacity(1 << 12).install();

    // Two threads alternate strictly via a turn flag, so the real
    // finish order of their spans is known exactly: a0 b0 a1 b1 ...
    const ROUNDS: u64 = 20;
    let turn = Arc::new(AtomicBool::new(false)); // false = A's turn
    let t2 = Arc::clone(&turn);
    let a = std::thread::spawn({
        let turn = Arc::clone(&turn);
        move || {
            for i in 0..ROUNDS {
                while turn.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                record_named("order_a", i);
                turn.store(true, Ordering::Release);
            }
        }
    });
    let b = std::thread::spawn(move || {
        for i in 0..ROUNDS {
            while !t2.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            record_named("order_b", i);
            t2.store(false, Ordering::Release);
        }
    });
    a.join().unwrap();
    b.join().unwrap();

    let events: Vec<_> = flush()
        .into_iter()
        .filter(|e| e.name.as_str().starts_with("order_"))
        .collect();

    // Monotone sequence numbers (strictly increasing: each ticket is
    // unique) and the exact alternation the synchronisation enforced.
    assert_eq!(events.len(), 2 * ROUNDS as usize);
    assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    for (i, e) in events.iter().enumerate() {
        let expect = if i % 2 == 0 { "order_a" } else { "order_b" };
        assert_eq!(e.name.as_str(), expect, "position {i}");
        assert_eq!(e.items, (i / 2) as u64);
    }
    // Spans came from two distinct rings.
    assert_eq!(
        events
            .iter()
            .map(|e| e.thread)
            .collect::<std::collections::HashSet<_>>()
            .len(),
        2
    );

    // Flush drained the rings: nothing of ours is left behind.
    let leftover = flush()
        .into_iter()
        .filter(|e| e.name.as_str().starts_with("order_"))
        .count();
    TelemetryConfig::disabled().install();
    assert_eq!(leftover, 0);
}

#[test]
fn disabled_telemetry_records_nothing() {
    let _g = serial();
    TelemetryConfig::disabled().install();
    assert!(SpanTimer::start().is_none());
    let before = counters().snapshot();
    // Nothing recorded → a flush now contains no span with our tag.
    if let Some(t) = SpanTimer::start() {
        t.finish(SpanKind::Launch, Name::Static("never"), 0, 0.0);
    }
    let seen = flush()
        .into_iter()
        .filter(|e| e.name.as_str() == "never")
        .count();
    assert_eq!(seen, 0);
    assert_eq!(counters().snapshot().spans_dropped, before.spans_dropped);
}
