//! A downstream-user scenario: write a *new* application (a TeaLeaf-style
//! 2-D heat-conduction solver) against the public DSL API and evaluate
//! its portability across all six platforms — the workflow the paper
//! recommends: start with the flat formulation, then tune nd_range for
//! the critical kernels.
//!
//!     cargo run --release --example heat_diffusion

use ops_dsl::prelude::*;
use sycl_portability::prelude::*;

/// One Jacobi heat step: u' = u + a·∇²u, returning the residual norm.
fn heat_app(session: &Session, n: usize, steps: usize, nd: Option<[usize; 3]>) -> f64 {
    let block = Block::new_2d(n, n, 1);
    let mut u = Dat::<f64>::zeroed(&block, "u");
    let mut next = Dat::<f64>::zeroed(&block, "u_next");
    u.fill_with(|i, j, _| {
        if (i - n as i64 / 2).abs() < 4 && (j - n as i64 / 2).abs() < 4 {
            100.0
        } else {
            0.0
        }
    });
    let alpha = 0.2;
    let meta = ops_dsl::DatMeta::anon(8.0);

    // Upload once (free on CPUs, PCIe-priced on GPUs).
    session.transfer(2.0 * u.bytes());

    let mut residual = 0.0;
    for _ in 0..steps {
        {
            let r = u.reader();
            let w = next.writer();
            let mut lp = ParLoop::new("heat_step", block.interior())
                .read(meta, Stencil::star_2d(1))
                .write(meta)
                .flops(6.0);
            if let Some(shape) = nd {
                lp = lp.nd_shape(shape);
            }
            lp.run(session, |tile| {
                for (i, j, k) in tile.iter() {
                    let lap = r.at(i - 1, j, k)
                        + r.at(i + 1, j, k)
                        + r.at(i, j - 1, k)
                        + r.at(i, j + 1, k)
                        - 4.0 * r.at(i, j, k);
                    w.set(i, j, k, r.at(i, j, k) + alpha * lap);
                }
            });
        }
        std::mem::swap(&mut u, &mut next);

        let r = u.reader();
        residual = ParLoop::new("residual", block.interior())
            .read(meta, Stencil::point())
            .flops(2.0)
            .run_reduce(
                session,
                0.0,
                |a, b| a + b,
                |tile| {
                    let mut s = 0.0;
                    for (i, j, k) in tile.iter() {
                        s += r.at(i, j, k) * r.at(i, j, k);
                    }
                    s
                },
            );
    }
    session.transfer(u.bytes());
    residual
}

fn main() {
    println!("=== New app portability check: 2-D heat conduction ===\n");
    let n = 512;
    let steps = 20;

    let platforms = [
        PlatformId::A100,
        PlatformId::Mi250x,
        PlatformId::Max1100,
        PlatformId::Xeon8360Y,
        PlatformId::GenoaX,
        PlatformId::Altra,
    ];

    println!(
        "{:12} {:10} {:>12} {:>12} {:>14}",
        "platform", "toolchain", "flat", "nd[128,2]", "residual"
    );
    for p in platforms {
        for tc in [Toolchain::Dpcpp, Toolchain::OpenSycl] {
            let run = |variant: SyclVariant, nd: Option<[usize; 3]>| -> Option<(f64, f64)> {
                let s =
                    Session::create(SessionConfig::new(p, tc).variant(variant).app("heat")).ok()?;
                let res = heat_app(&s, n, steps, nd);
                Some((s.elapsed(), res))
            };
            let flat = run(SyclVariant::Flat, None);
            let nd = run(SyclVariant::NdRange([128, 2, 1]), Some([128, 2, 1]));
            match (flat, nd) {
                (Some((tf, res)), Some((tn, _))) => println!(
                    "{:12} {:10} {:>10.2} ms {:>10.2} ms {:>14.4e}",
                    p.label(),
                    tc.label(),
                    tf * 1e3,
                    tn * 1e3,
                    res
                ),
                _ => println!(
                    "{:12} {:10} {:>12} {:>12} {:>14}",
                    p.label(),
                    tc.label(),
                    "n/a",
                    "n/a",
                    "-"
                ),
            }
        }
    }
    println!("\nThe residual column is identical everywhere: one source, one result,");
    println!("six machines — with the flat-vs-tuned gap visible per platform.");
}
