//! Compare the three OP2 race-resolution schemes (Figure 1 of the paper)
//! functionally and under the performance model: all three must compute
//! identical physics, while their simulated cost differs with the
//! hardware's atomics throughput and the mesh ordering.
//!
//!     cargo run --release --example mgcfd_schemes

use sycl_portability::prelude::*;

fn main() {
    println!("=== MG-CFD race-resolution schemes ===\n");

    // Functional agreement at a small size.
    println!("--- functional check (12x12x8 grid, 3 levels) ---");
    let mut finals = Vec::new();
    for scheme in Scheme::all() {
        let session = Session::create(
            SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda)
                .app("mgcfd")
                .scheme(scheme),
        )
        .unwrap();
        let run = miniapps::Mgcfd::test().run(&session);
        println!(
            "  {:13} residual-norm = {:.12e}   ({} launches)",
            scheme.label(),
            run.validation,
            session.records().len()
        );
        finals.push(run.validation);
    }
    let spread = (finals.iter().cloned().fold(f64::MIN, f64::max)
        - finals.iter().cloned().fold(f64::MAX, f64::min))
        / finals[0];
    println!("  relative spread across schemes: {spread:.2e} (atomics reorder sums)\n");

    // Modelled cost at Rotor37 size on two very different machines.
    for platform in [PlatformId::A100, PlatformId::Xeon8360Y] {
        println!(
            "--- simulated cost, Rotor37 8M vertices on {} ---",
            sycl_sim::Platform::get(platform).name
        );
        let tc = if platform.is_gpu() {
            Toolchain::NativeCuda
        } else {
            Toolchain::Mpi
        };
        for scheme in Scheme::all() {
            let session = Session::create(
                SessionConfig::new(platform, tc)
                    .app("mgcfd")
                    .scheme(scheme)
                    .dry_run(),
            )
            .unwrap();
            let run = miniapps::Mgcfd::paper().run(&session);
            println!(
                "  {:13} {:>8.3} s   effective BW {:>6.0} GB/s ({:.0}% of STREAM)",
                scheme.label(),
                run.elapsed,
                run.effective_bandwidth / 1e9,
                run.effective_bandwidth / session.platform().mem.stream_bw * 100.0
            );
        }
        println!();
    }

    println!("Atomics exploit the mesh ordering; global colouring destroys locality");
    println!("(the paper's §4.3 bytes-per-wave analysis); hierarchical sits between.");
}
