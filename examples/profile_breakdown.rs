//! Per-kernel profiling view: where CloverLeaf 2D's time goes on two very
//! different machine/toolchain combinations — the analysis behind the
//! paper's boundary-loop and reduction observations (§4.1/§4.2).
//!
//!     cargo run --release --example profile_breakdown

use sycl_portability::prelude::*;

fn main() {
    for (platform, tc) in [
        (PlatformId::A100, Toolchain::NativeCuda),
        (PlatformId::Xeon8360Y, Toolchain::Dpcpp),
        (PlatformId::Xeon8360Y, Toolchain::OpenSycl),
    ] {
        let session = Session::create(
            SessionConfig::new(platform, tc)
                .variant(SyclVariant::NdRange([128, 2, 1]))
                .app("cloverleaf2d")
                .dry_run(),
        )
        .unwrap();
        miniapps::CloverLeaf2d::paper().run(&session);
        println!("{}", session.explain());
    }
    println!("Note the DPC++ row: every launch pays the OpenCL driver cost, so the");
    println!("tiny update_halo loops climb the profile — exactly the paper's §4.2");
    println!("observation (5.4-8.7% of runtime vs 0.34% for MPI+OpenMP). The");
    println!("calc_dt reduction shows the binary-tree penalty on both SYCL rows.");
}
