//! Quickstart: run one kernel on two simulated platforms with two
//! toolchains and compare what the SYCL abstraction costs.
//!
//!     cargo run --example quickstart

use sycl_portability::prelude::*;

fn main() {
    println!("=== sycl-portability quickstart ===\n");

    // A simple bandwidth-bound kernel: y = a*x + y over 2^22 doubles.
    let n = 1 << 22;

    for (platform, toolchains) in [
        (
            PlatformId::A100,
            vec![Toolchain::NativeCuda, Toolchain::Dpcpp, Toolchain::OpenSycl],
        ),
        (
            PlatformId::Xeon8360Y,
            vec![Toolchain::MpiOpenMp, Toolchain::Dpcpp, Toolchain::OpenSycl],
        ),
    ] {
        println!("--- {} ---", sycl_sim::Platform::get(platform).name);
        for tc in toolchains {
            let session = Session::create(
                SessionConfig::new(platform, tc)
                    .variant(SyclVariant::NdRange([256, 1, 1]))
                    .app("quickstart"),
            )
            .expect("quickstart runs everywhere");

            // The kernel really executes (on the host thread pool); the
            // timing comes from the calibrated platform model.
            let mut y = vec![1.0f64; n];
            let x: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
            let kernel =
                sycl_sim::Kernel::streaming("axpy", n as u64, 3.0 * 8.0 * n as f64, 2.0 * n as f64);
            session.launch(&kernel, || {
                parkit::global_pool().for_each_chunk(&mut y, 1 << 14, |start, chunk| {
                    for (i, v) in chunk.iter_mut().enumerate() {
                        *v += 2.5 * x[start + i];
                    }
                });
            });

            let gbs = 3.0 * 8.0 * n as f64 / session.elapsed() / 1e9;
            println!(
                "  {:12}  {:8.1} us   {:7.0} GB/s   (y[5] = {})",
                tc.label(),
                session.elapsed() * 1e6,
                gbs,
                y[5]
            );
        }
        println!();
    }

    println!("Numerics are identical everywhere; only the simulated clock differs.");
}
