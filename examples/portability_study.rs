//! A miniature performance-portability study: run CloverLeaf 2D at paper
//! size across all six platforms and every available programming
//! approach, then compute the Pennycook–Sewall PP̄ metric — the paper's
//! §4.4 analysis in one binary.
//!
//!     cargo run --release --example portability_study

use portability::{measure_structured, pennycook, variants_for, StudyVariant};
use sycl_portability::prelude::*;
use sycl_sim::Toolchain;

fn main() {
    let app = miniapps::CloverLeaf2d::paper();
    let platforms = [
        PlatformId::A100,
        PlatformId::Mi250x,
        PlatformId::Max1100,
        PlatformId::Xeon8360Y,
        PlatformId::GenoaX,
        PlatformId::Altra,
    ];

    println!("=== CloverLeaf 2D (7680^2, 50 iter) across all platforms ===\n");
    println!(
        "{:12} {:18} {:>12} {:>12} {:>10}",
        "platform", "variant", "runtime", "efficiency", "boundary"
    );

    // platform -> per-(toolchain, nd) efficiency for PP.
    let mut dpcpp_nd: Vec<Option<f64>> = Vec::new();
    let mut opensycl_nd: Vec<Option<f64>> = Vec::new();

    for platform in platforms {
        for variant in variants_for(platform) {
            let m = measure_structured(&app, platform, variant);
            match (&m.runtime, m.efficiency) {
                (Ok(t), Some(e)) => println!(
                    "{:12} {:18} {:>10.3} s {:>11.0}% {:>9.1}%",
                    platform.label(),
                    variant.label(),
                    t,
                    e * 100.0,
                    m.boundary_fraction.unwrap_or(0.0) * 100.0
                ),
                (Err(kind), _) => println!(
                    "{:12} {:18} {:>12} {:>12} {:>10}",
                    platform.label(),
                    variant.label(),
                    format!("{kind}"),
                    "-",
                    "-"
                ),
                _ => {}
            }
        }
        let grab = |tc: Toolchain| -> Option<f64> {
            let v = StudyVariant {
                toolchain: tc,
                nd_range: true,
            };
            measure_structured(&app, platform, v).efficiency
        };
        dpcpp_nd.push(grab(Toolchain::Dpcpp));
        opensycl_nd.push(grab(Toolchain::OpenSycl));
    }

    println!("\n=== Pennycook-Sewall PP̄ over the six platforms ===");
    println!(
        "DPC++ nd_range    : {:.2} (failures zeroed) / {:.2} (failures ignored)",
        pennycook(&dpcpp_nd, false),
        pennycook(&dpcpp_nd, true)
    );
    println!(
        "OpenSYCL nd_range : {:.2} (failures zeroed) / {:.2} (failures ignored)",
        pennycook(&opensycl_nd, false),
        pennycook(&opensycl_nd, true)
    );
    println!("\n(The paper's §4.4: a variant that fails anywhere scores PP̄ = 0 unless");
    println!(" failing platforms are excluded — CloverLeaf 2D only works with DPC++");
    println!(" nd_range on Genoa-X, and DPC++ does not target the Altra at all.)");
}
