//! Run the RTM wave propagator functionally at a visualisable size and
//! print an ASCII slice of the expanding wavefront — demonstrating that
//! the simulated runtime executes real numerics, not stubs.
//!
//!     cargo run --release --example wave_field

use ops_dsl::prelude::*;
use sycl_portability::prelude::*;

fn main() {
    let n = 41usize;
    let steps = 12;
    let session = Session::create(
        SessionConfig::new(PlatformId::A100, Toolchain::Dpcpp)
            .variant(SyclVariant::NdRange([32, 8, 1]))
            .app("wave_field"),
    )
    .unwrap();

    let block = Block::new_3d(n, n, n, 4);
    let mut prev = Dat::<f32>::zeroed(&block, "p_prev");
    let mut curr = Dat::<f32>::zeroed(&block, "p_curr");
    let c = (n / 2) as i64;
    curr.writer().set(c, c, c, 1.0);

    let f32_meta = ops_dsl::DatMeta::anon(4.0);
    for _ in 0..steps {
        let p = curr.reader();
        let w = prev.writer();
        ParLoop::new("wave_step", block.interior())
            .read(f32_meta, Stencil::star_3d(4))
            .read_write(f32_meta)
            .flops(33.0)
            .run(&session, |tile| {
                let coef: [f32; 5] = [-2.847, 1.6, -0.2, 0.0254, -0.0018];
                for (i, j, k) in tile.iter() {
                    let mut lap = 3.0 * coef[0] * p.at(i, j, k);
                    for (s, &cf) in coef.iter().enumerate().skip(1) {
                        let s = s as i64;
                        lap += cf
                            * (p.at(i + s, j, k)
                                + p.at(i - s, j, k)
                                + p.at(i, j + s, k)
                                + p.at(i, j - s, k)
                                + p.at(i, j, k + s)
                                + p.at(i, j, k - s));
                    }
                    let next = 2.0 * p.at(i, j, k) - w.get(i, j, k) + 0.1 * lap;
                    w.set(i, j, k, next);
                }
            });
        std::mem::swap(&mut prev, &mut curr);
    }

    println!(
        "Wavefront after {steps} steps (z = {c} slice), simulated GPU time {:.1} us:\n",
        session.elapsed() * 1e6
    );
    let shades = [' ', '.', ':', '+', '*', '#', '@'];
    let max = (0..n as i64)
        .flat_map(|j| (0..n as i64).map(move |i| (i, j)))
        .map(|(i, j)| curr.at(i, j, c).abs())
        .fold(0.0f32, f32::max)
        .max(1e-12);
    for j in 0..n as i64 {
        let row: String = (0..n as i64)
            .map(|i| {
                let v = (curr.at(i, j, c).abs() / max * (shades.len() - 1) as f32).round();
                shades[(v as usize).min(shades.len() - 1)]
            })
            .collect();
        println!("  {row}");
    }
    println!("\nThe ring is the 8th-order wavefront; x/y symmetry is exact.");
}
